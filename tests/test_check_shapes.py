"""Seeded-violation tests for the shape & broadcast analyzer and sanitizer.

Every shape rule (RPR030–RPR034) gets a known-bad fixture tree that must
fire with the exact code and ``file:line`` anchor, plus a corrected twin
that must stay quiet — mirroring ``test_check_perf.py``.  The symbolic
shape interpreter gets its own inference-unit suite (ctors, CSR
attributes, ufunc broadcasting, ``reduceat``, ``-1`` reshape), and the
runtime sanitizer is mutation-tested: forced SAN006 drift in every
direction (changed geometry, vanished array, uncontracted array) must be
caught, and ``--update-contracts`` must clear it without clobbering the
other profile.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.check import (
    HOT_PERIMETER,
    RULESET_VERSION,
    SERVE_SHAPE_ROOTS,
    SHAPE_RULES,
    SHAPE_SANITIZE_RULES,
    HotKernel,
    build_callgraph,
    shape_paths,
    shape_sanitize,
)
from repro.check.__main__ import main as check_main
from repro.check.callgraph import FunctionResolver
from repro.check.shapeinfer import (
    ShapeInterp,
    SymDim,
    broadcast_shapes,
    concat_shapes,
    dims_equal,
    parse_shape,
    reduce_shape,
    reshape_shape,
    stack_shapes,
    unify_shapes,
)
from repro.check.shapesanitize import (
    SHAPE_PROBES,
    ShapeProbe,
    load_contracts,
    record_shapes,
    update_contracts,
)

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"
CONTRACTS = Path(__file__).resolve().parents[1] / "benchmarks" / "shape_contracts.json"

#: fixture perimeter: one root named ``app.kern.kernel``
KERNEL = (HotKernel("app.kern.kernel", "fixture kernel"),)


def make_tree(tmp_path, files):
    """Write ``{relpath: source}`` as a package tree (inits auto-created)."""
    root = tmp_path / "tree"
    for rel, src in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        d = path.parent
        while d != root:
            (d / "__init__.py").touch()
            d = d.parent
        path.write_text(textwrap.dedent(src))
    return root


def line_of(root, rel, needle):
    """1-based line of the first source line containing ``needle``."""
    for i, line in enumerate((root / rel).read_text().splitlines(), start=1):
        if needle in line:
            return i
    raise AssertionError(f"{needle!r} not found in {rel}")


def codes(report):
    return {f.code for f in report.findings}


def anchor(report, code):
    """``(path-suffix, line)`` of the single finding with ``code``."""
    hits = [f for f in report.findings if f.code == code]
    assert len(hits) == 1, f"expected one {code}, got {hits}"
    return hits[0].path, hits[0].line


def infer_kernel(tmp_path, body):
    """Run :class:`ShapeInterp` over a fixture kernel; ``{name: shape}``."""
    root = make_tree(tmp_path, {"app/kern.py": body})
    cg = build_callgraph([root])
    fn = cg.functions["app.kern.kernel"]
    resolver = FunctionResolver(cg, cg.modules[fn.module], fn)
    interp = ShapeInterp(fn.node, resolver)
    interp.run()
    shapes = {}
    for _node, name, shape in interp.bindings:
        shapes[name] = shape
    return shapes


# ----------------------------------------------------------------------
# shape algebra units: the provable-only contract of the domain
# ----------------------------------------------------------------------
class TestShapeAlgebra:
    def test_parse_shape_symbols_offsets_and_literals(self):
        assert parse_shape("(n, 3)") == (SymDim("n"), 3)
        assert parse_shape("(n+1,)") == (SymDim("n", 1),)
        assert parse_shape("(csr.nnz,)") == (SymDim("csr.nnz"),)
        assert parse_shape("(q, ?)") == (SymDim("q"), None)
        with pytest.raises(ValueError):
            parse_shape("(n ** 2,)")

    def test_dims_equal_is_three_valued(self):
        assert dims_equal(3, 3) is True
        assert dims_equal(3, 4) is False
        assert dims_equal(SymDim("n"), SymDim("n")) is True
        assert dims_equal(SymDim("n"), SymDim("n", 1)) is False
        assert dims_equal(SymDim("n"), SymDim("m")) is None
        assert dims_equal(SymDim("n"), 3) is None
        assert dims_equal(None, 3) is None

    def test_broadcast_proves_int_and_offset_conflicts_only(self):
        _, issue = broadcast_shapes((3,), (4,))
        assert issue is not None and issue.kind == "broadcast"
        _, issue = broadcast_shapes((SymDim("n"),), (SymDim("n", 1),))
        assert issue is not None and issue.kind == "broadcast"
        # a foreign symbol might be 1 at runtime: stays silent
        result, issue = broadcast_shapes((SymDim("n"),), (SymDim("m"),))
        assert issue is None and result == (None,)
        result, issue = broadcast_shapes((SymDim("n"), 1), (3,))
        assert issue is None and result == (SymDim("n"), 3)

    def test_broadcast_flags_rank_promotion(self):
        n = SymDim("n")
        result, issue = broadcast_shapes((n, 1), (n,))
        assert result == (n, n)
        assert issue is not None and issue.kind == "rank_promote"
        # (1, 1) against (1,) is degenerate, not a blow-up
        _, issue = broadcast_shapes((1, 1), (1,))
        assert issue is None

    def test_reduce_shape_validates_axis(self):
        assert reduce_shape((4, 5), 1) == ((4,), None)
        assert reduce_shape((4, 5), None) == ((), None)
        assert reduce_shape((4, 5), 0, keepdims=True) == ((1, 5), None)
        _, issue = reduce_shape((4, 5), 2)
        assert issue is not None and issue.kind == "axis"
        _, issue = reduce_shape(None, 3, rank_hint=2)
        assert issue is not None and issue.kind == "axis"

    def test_reshape_proves_count_and_hole_errors(self):
        assert reshape_shape((3, 4), (2, 6)) == ((2, 6), None)
        assert reshape_shape((12,), (3, -1)) == ((3, 4), None)
        _, issue = reshape_shape((3, 4), (5, 2))
        assert issue is not None and issue.kind == "reshape"
        _, issue = reshape_shape((3, 4), (-1, -1))
        assert issue is not None and issue.kind == "reshape"
        _, issue = reshape_shape((12,), (5, -1))
        assert issue is not None and issue.kind == "reshape"
        # symbolic element count: nothing provable, no issue
        _, issue = reshape_shape((SymDim("n"), 4), (5, 2))
        assert issue is None

    def test_concat_and_stack_prove_geometry(self):
        assert concat_shapes([(2, 3), (4, 3)], axis=0) == ((6, 3), None)
        _, issue = concat_shapes([(2, 3), (2, 4)], axis=0)
        assert issue is not None and issue.kind == "concat"
        _, issue = concat_shapes([(2, 3), (2,)], axis=0)
        assert issue is not None and issue.kind == "concat"
        assert stack_shapes([(3,), (3,)], axis=0) == ((2, 3), None)
        _, issue = stack_shapes([(3,), (4,)], axis=0)
        assert issue is not None and issue.kind == "stack"

    def test_unify_shapes_shares_symbol_bindings(self):
        bindings = {}
        assert unify_shapes(parse_shape("(q,)"), (4,), bindings) is None
        conflict = unify_shapes(parse_shape("(q,)"), (5,), bindings)
        assert conflict is not None and "`q`" in conflict
        conflict = unify_shapes(parse_shape("(q,)"), (4, 5), bindings)
        assert conflict is not None and "rank" in conflict


# ----------------------------------------------------------------------
# interpreter inference units
# ----------------------------------------------------------------------
class TestShapeInference:
    def test_ctors_and_annotations_seed_symbolic_shapes(self, tmp_path):
        shapes = infer_kernel(
            tmp_path,
            """
            import numpy as np

            def kernel(n: int, arr: "(n, 3)"):
                grid = np.zeros((n, 3))
                flat = np.zeros(n)
                like = np.zeros_like(arr)
                return grid
            """,
        )
        assert shapes["grid"] == (SymDim("n"), 3)
        assert shapes["flat"] == (SymDim("n"),)
        assert shapes["like"] == (SymDim("n"), 3)

    def test_csr_attributes_and_slice_offsets(self, tmp_path):
        shapes = infer_kernel(
            tmp_path,
            """
            import numpy as np

            def kernel(csr):
                indptr = csr.indptr
                starts = csr.indptr[:-1]
                counts = np.diff(csr.indptr)
                idx = csr.indices
                vals = csr.data
                return starts
            """,
        )
        assert shapes["indptr"] == (SymDim("csr.rows", 1),)
        assert shapes["starts"] == (SymDim("csr.rows"),)
        assert shapes["counts"] == (SymDim("csr.rows"),)
        assert shapes["idx"] == (SymDim("csr.nnz"),)
        assert shapes["vals"] == (SymDim("csr.nnz"),)

    def test_ufunc_broadcast_and_reductions(self, tmp_path):
        shapes = infer_kernel(
            tmp_path,
            """
            import numpy as np

            def kernel(n: int):
                grid = np.zeros((n, 4))
                row = np.zeros(4)
                both = grid + row
                per_row = both.sum(axis=1)
                total = both.sum()
                lo = np.minimum(per_row, 0.0)
                return total
            """,
        )
        assert shapes["both"] == (SymDim("n"), 4)
        assert shapes["per_row"] == (SymDim("n"),)
        assert shapes["total"] == ()
        assert shapes["lo"] == (SymDim("n"),)

    def test_reduceat_takes_indices_extent(self, tmp_path):
        shapes = infer_kernel(
            tmp_path,
            """
            import numpy as np

            def kernel(csr):
                starts = csr.indptr[:-1]
                sums = np.add.reduceat(csr.data, starts)
                return sums
            """,
        )
        assert shapes["sums"] == (SymDim("csr.rows"),)

    def test_reshape_hole_indexing_and_newaxis(self, tmp_path):
        shapes = infer_kernel(
            tmp_path,
            """
            import numpy as np

            def kernel():
                flat = np.arange(12)
                grid = flat.reshape(3, -1)
                first = grid[0]
                col = flat[:, np.newaxis]
                back = grid.ravel()
                return back
            """,
        )
        assert shapes["flat"] == (12,)
        assert shapes["grid"] == (3, 4)
        assert shapes["first"] == (4,)
        assert shapes["col"] == (12, 1)
        assert shapes["back"] == (12,)


# ----------------------------------------------------------------------
# RPR030: provably incompatible / rank-promoting broadcasts
# ----------------------------------------------------------------------
class TestRPR030:
    def test_rank_promoting_broadcast_fires_with_anchor(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(n: int):
                        col = np.zeros((n, 1))
                        flat = np.zeros(n)
                        blown = col + flat
                        return blown
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        assert codes(report) == {"RPR030"}
        path, line = anchor(report, "RPR030")
        assert path.endswith("app/kern.py")
        assert line == line_of(root, "app/kern.py", "blown = col + flat")

    def test_known_int_mismatch_and_indptr_offset_fire(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(csr):
                        a = np.zeros(3)
                        b = np.ones(4)
                        bad_ints = a + b
                        starts = csr.indptr[:-1]
                        bad_offsets = starts * csr.indptr
                        return bad_ints
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        lines = {f.line for f in report.findings if f.code == "RPR030"}
        assert line_of(root, "app/kern.py", "bad_ints = a + b") in lines
        assert line_of(root, "app/kern.py", "bad_offsets = ") in lines

    def test_ravelled_twin_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(n: int):
                        col = np.zeros((n, 1))
                        flat = np.zeros(n)
                        good = col.ravel() + flat
                        outer = col + flat[np.newaxis, :]
                        return good + outer.sum(axis=1)
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        assert report.ok, report.render()

    def test_foreign_symbols_stay_silent(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(n: int, m: int):
                        a = np.zeros(n)
                        b = np.zeros(m)
                        maybe = a + b
                        return maybe
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        assert report.ok, report.render()


# ----------------------------------------------------------------------
# RPR031: reduction axis out of rank
# ----------------------------------------------------------------------
class TestRPR031:
    def test_axis_out_of_rank_fires_with_anchor(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(n: int):
                        grid = np.zeros((n, 4))
                        bad = grid.sum(axis=2)
                        also_bad = np.amin(grid, axis=-3)
                        return bad + also_bad
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        lines = {f.line for f in report.findings if f.code == "RPR031"}
        assert line_of(root, "app/kern.py", "bad = grid.sum(axis=2)") in lines
        assert line_of(root, "app/kern.py", "also_bad = ") in lines

    def test_valid_axes_are_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(n: int):
                        grid = np.zeros((n, 4))
                        ok = grid.sum(axis=1)
                        neg = np.amin(grid, axis=-2)
                        return ok + neg
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        assert report.ok, report.render()


# ----------------------------------------------------------------------
# RPR032: reshape/concatenate/stack geometry
# ----------------------------------------------------------------------
class TestRPR032:
    def test_count_mismatch_and_double_hole_fire(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel():
                        grid = np.zeros((3, 4))
                        bad_count = grid.reshape(5, 2)
                        bad_holes = grid.reshape(-1, -1)
                        return bad_count
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        lines = {f.line for f in report.findings if f.code == "RPR032"}
        assert line_of(root, "app/kern.py", "bad_count = ") in lines
        assert line_of(root, "app/kern.py", "bad_holes = ") in lines

    def test_off_axis_concat_mismatch_fires_with_anchor(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel():
                        a = np.zeros((2, 3))
                        b = np.zeros((2, 4))
                        bad = np.concatenate([a, b], axis=0)
                        return bad
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        assert codes(report) == {"RPR032"}
        _, line = anchor(report, "RPR032")
        assert line == line_of(root, "app/kern.py", "bad = np.concatenate")

    def test_correct_geometry_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel():
                        grid = np.zeros((3, 4))
                        fine = grid.reshape(2, 6)
                        hole = grid.reshape(3, -1)
                        a = np.zeros((2, 3))
                        b = np.zeros((2, 4))
                        joined = np.concatenate([a, b], axis=1)
                        stacked = np.stack([a, a], axis=0)
                        return fine, hole, joined, stacked
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        assert report.ok, report.render()


# ----------------------------------------------------------------------
# RPR033: aliasing / read-only writes
# ----------------------------------------------------------------------
class TestRPR033:
    def test_write_into_readonly_mmap_fires_with_anchor(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(path):
                        table = np.load(path, mmap_mode="r")
                        table[0] = 1
                        return table
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        assert codes(report) == {"RPR033"}
        _, line = anchor(report, "RPR033")
        assert line == line_of(root, "app/kern.py", "table[0] = 1")

    def test_readonly_provenance_survives_views_and_aliases(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(cache, key):
                        shard = cache.load_mmap(key)
                        window = shard[2:8]
                        alias = window
                        alias[0] = -1
                        return shard
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        assert codes(report) == {"RPR033"}
        _, line = anchor(report, "RPR033")
        assert line == line_of(root, "app/kern.py", "alias[0] = -1")

    def test_view_write_aliasing_later_read_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(n: int):
                        base = np.zeros(n)
                        head = base[:4]
                        head[0] = 1.0
                        return base.sum()
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        assert codes(report) == {"RPR033"}
        _, line = anchor(report, "RPR033")
        assert line == line_of(root, "app/kern.py", "head[0] = 1.0")

    def test_copied_slice_twin_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(path, n: int):
                        table = np.load(path, mmap_mode="r")
                        local = np.array(table)
                        local[0] = 1
                        base = np.zeros(n)
                        head = np.zeros(4)
                        head[0] = 1.0
                        return local, base.sum() + head.sum()
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        assert report.ok, report.render()


# ----------------------------------------------------------------------
# RPR034: declared contract drift
# ----------------------------------------------------------------------
class TestRPR034:
    KERNEL34 = (
        HotKernel(
            "app.kern.kernel",
            "fixture kernel",
            shape=(("out", "(q,)"), ("other", "(q,)"), ("return", "(q,)")),
        ),
    )

    def test_inconsistent_symbol_binding_fires_with_anchor(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel():
                        out = np.zeros(4)
                        other = np.zeros(5)
                        return out
                """
            },
        )
        report = shape_paths([root], kernels=self.KERNEL34)
        assert codes(report) == {"RPR034"}
        _, line = anchor(report, "RPR034")
        assert line == line_of(root, "app/kern.py", "other = np.zeros(5)")
        msg = report.findings[0].message
        assert "`other`" in msg and "`q`" in msg

    def test_rank_drift_on_return_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel():
                        out = np.zeros(4)
                        other = np.zeros(4)
                        return np.zeros((4, 2))
                """
            },
        )
        report = shape_paths([root], kernels=self.KERNEL34)
        assert codes(report) == {"RPR034"}
        _, line = anchor(report, "RPR034")
        assert line == line_of(root, "app/kern.py", "return np.zeros((4, 2))")

    def test_consistent_bindings_are_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel():
                        out = np.zeros(4)
                        other = np.zeros(4)
                        return out + other
                """
            },
        )
        report = shape_paths([root], kernels=self.KERNEL34)
        assert report.ok, report.render()

    def test_seeded_contracts_feed_downstream_inference(self, tmp_path):
        # the declared (q,) facts are live inside the body: adding a
        # contracted (q,) name to a known (q+1,)-style array must fire
        kernels = (
            HotKernel(
                "app.kern.kernel",
                "fixture kernel",
                shape=(("queries", "(q,)"),),
            ),
        )
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(queries):
                        wrong = np.zeros(3)
                        yes = queries + np.zeros(4)
                        bad = wrong + np.ones(4)
                        return bad
                """
            },
        )
        report = shape_paths([root], kernels=kernels)
        assert "RPR030" in codes(report)

    def test_malformed_declared_contract_fails_loudly(self, tmp_path):
        bad_kernel = (
            HotKernel(
                "app.kern.kernel", "fixture kernel", shape=(("x", "(n ** 2,)"),)
            ),
        )
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    def kernel():
                        return 0
                """
            },
        )
        with pytest.raises(ValueError):
            shape_paths([root], kernels=bad_kernel)


# ----------------------------------------------------------------------
# suppression
# ----------------------------------------------------------------------
class TestNoqa:
    def test_line_noqa_suppresses_one_code(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel():
                        a = np.zeros(3)
                        b = np.ones(4)
                        bad = a + b  # repro: noqa[RPR030]
                        worse = a * b
                        return bad + worse
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        lines = {f.line for f in report.findings if f.code == "RPR030"}
        assert line_of(root, "app/kern.py", "worse = a * b") in lines
        assert line_of(root, "app/kern.py", "bad = a + b") not in lines

    def test_def_line_noqa_suppresses_whole_function(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel():  # repro: noqa[RPR030]
                        a = np.zeros(3)
                        b = np.ones(4)
                        bad = a + b
                        worse = a * b
                        return bad + worse
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        assert report.ok, report.render()

    def test_def_line_noqa_does_not_cover_other_codes(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel():  # repro: noqa[RPR030]
                        a = np.zeros(3)
                        b = np.ones(4)
                        bad = a + b
                        grid = np.zeros((3, 4))
                        worse = grid.sum(axis=2)
                        return bad + worse
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        assert codes(report) == {"RPR031"}


# ----------------------------------------------------------------------
# perimeter wiring
# ----------------------------------------------------------------------
class TestPerimeter:
    def test_serve_roots_extend_the_perf_perimeter(self):
        perf_quals = {k.qualname for k in HOT_PERIMETER}
        serve_quals = {k.qualname for k in SERVE_SHAPE_ROOTS}
        assert not perf_quals & serve_quals
        assert "repro.serve.workers.parallel_resolve" in serve_quals

    def test_outside_perimeter_is_not_scanned(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel():
                        return 0

                    def bystander():
                        a = np.zeros(3)
                        b = np.ones(4)
                        return a + b
                """
            },
        )
        report = shape_paths([root], kernels=KERNEL)
        assert report.ok, report.render()

    def test_real_kernel_contracts_parse_and_infer(self):
        # the committed HotKernel.shape declarations must parse, and the
        # NextHopTable root must actually produce inferable CSR bindings
        report = shape_paths([SRC])
        assert report.ok, report.render()
        assert report.checked > 0


# ----------------------------------------------------------------------
# SAN006: recorded shape contracts
# ----------------------------------------------------------------------
def _probe_fixed(smoke):
    import numpy as np

    return {
        "grid": np.zeros((3, 4), dtype=np.float64),
        "ids": np.arange(7, dtype=np.int64),
    }


def _probe_drifted(smoke):
    import numpy as np

    # same names, changed geometry/dtype; `ids` vanished, `extra` appeared
    return {
        "grid": np.zeros((3, 5), dtype=np.float32),
        "extra": np.zeros(2, dtype=np.int32),
    }


FIXED = ShapeProbe("fixture", "app.kern.kernel", _probe_fixed)
DRIFTED = ShapeProbe("fixture", "app.kern.kernel", _probe_drifted)


class TestSAN006:
    def test_record_shapes_flattens_geometry(self):
        got = record_shapes(FIXED, smoke=True)
        assert got == {
            "grid": {"shape": [3, 4], "dtype": "float64"},
            "ids": {"shape": [7], "dtype": "int64"},
        }

    def test_uncontracted_workload_is_skipped(self, tmp_path):
        path = tmp_path / "contracts.json"
        report = shape_sanitize(
            smoke=True, contracts_path=path, update=False, probes=[FIXED]
        )
        assert report.ok and report.checked == 0

    def test_update_then_compare_then_drift(self, tmp_path):
        path = tmp_path / "contracts.json"
        report = shape_sanitize(
            smoke=True, contracts_path=path, update=True, probes=[FIXED]
        )
        assert report.ok
        data = load_contracts(path)
        assert data["profiles"]["smoke"]["fixture"]["grid"]["shape"] == [3, 4]

        report = shape_sanitize(
            smoke=True, contracts_path=path, update=False, probes=[FIXED]
        )
        assert report.ok and report.checked == 1

        report = shape_sanitize(
            smoke=True, contracts_path=path, update=False, probes=[DRIFTED]
        )
        assert codes(report) == {"SAN006"}
        msgs = "\n".join(f.message for f in report.findings)
        assert "(3, 5)" in msgs and "float32" in msgs  # geometry drift
        assert "`ids`" in msgs and "no longer records" in msgs
        assert "`extra`" in msgs and "no contract" in msgs
        assert all(f.path == "shapes[fixture]" for f in report.findings)

    def test_update_preserves_other_profile(self, tmp_path):
        path = tmp_path / "contracts.json"
        update_contracts(
            path, {"other": {"x": {"shape": [1], "dtype": "int64"}}}, "full"
        )
        shape_sanitize(smoke=True, contracts_path=path, update=True, probes=[FIXED])
        data = load_contracts(path)
        assert data["profiles"]["full"]["other"]["x"]["shape"] == [1]
        assert "fixture" in data["profiles"]["smoke"]

    def test_registered_probes_have_perimeter_kernels(self):
        quals = {k.qualname for k in HOT_PERIMETER} | {
            k.qualname for k in SERVE_SHAPE_ROOTS
        }
        for probe in SHAPE_PROBES:
            assert probe.kernel in quals, probe.name

    def test_committed_contracts_cover_all_probes(self):
        data = load_contracts(CONTRACTS)
        names = {p.name for p in SHAPE_PROBES}
        for profile in ("smoke", "full"):
            prof = data["profiles"][profile]
            assert set(prof) == names
            for arrays in prof.values():
                for entry in arrays.values():
                    assert isinstance(entry["shape"], list)
                    assert all(isinstance(d, int) for d in entry["shape"])
                    assert isinstance(entry["dtype"], str)

    def test_smoke_probes_match_committed_contracts(self):
        # the cheapest live probe end-to-end: closure_fast against the
        # committed smoke profile must be drift-free
        probe = next(p for p in SHAPE_PROBES if p.name == "closure_fast")
        report = shape_sanitize(
            smoke=True, contracts_path=CONTRACTS, update=False, probes=[probe]
        )
        assert report.ok, report.render()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_shapes_exit_codes(self, tmp_path, capsys):
        bad = make_tree(
            tmp_path,
            {
                # impersonates a real perimeter root by module path, so the
                # default HOT_PERIMETER picks it up through the CLI
                "repro/core/ipgraph.py": """
                    import numpy as np

                    def build_ip_graph(n: int):
                        col = np.zeros((n, 1))
                        flat = np.zeros(n)
                        return col + flat
                """
            },
        )
        assert check_main(["shapes", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RPR030" in out

    def test_repo_src_is_clean(self):
        assert check_main(["shapes", str(SRC)]) == 0

    def test_help_lists_all_tiers(self, capsys):
        with pytest.raises(SystemExit) as exc:
            check_main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for tier in ("lint", "contracts", "dataflow", "sanitize", "perf", "shapes"):
            assert tier in out

    def test_rule_catalogs_are_stable(self):
        assert set(SHAPE_RULES) == {
            "RPR030",
            "RPR031",
            "RPR032",
            "RPR033",
            "RPR034",
        }
        assert set(SHAPE_SANITIZE_RULES) == {"SAN006"}
        assert RULESET_VERSION == 4

    def test_ruleset_version_is_cache_key_material(self, monkeypatch):
        from repro.cache import cache_key

        k1 = cache_key("shapes.t", a=1)
        monkeypatch.setattr("repro.check.ruleset.RULESET_VERSION", 999)
        assert cache_key("shapes.t", a=1) != k1
