"""Tests for the cited-reference families: rotator, SCC, macro-star."""

import math

import pytest

from repro import metrics as mt
from repro import networks as nw
from repro.metrics.distances import eccentricities
from repro.networks.cited import macro_star, rotator_graph, star_connected_cycles


class TestRotatorGraph:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_size_and_outdegree(self, n):
        g = rotator_graph(n)
        assert g.num_nodes == math.factorial(n)
        assert g.directed
        assert g.max_degree == n - 1  # out-degree in the directed view

    @pytest.mark.parametrize("n,diam", [(3, 2), (4, 3), (5, 4)])
    def test_diameter_n_minus_1(self, n, diam):
        """Corbett: the rotator graph has diameter n − 1 — strictly below
        the star graph's ⌊3(n−1)/2⌋."""
        g = rotator_graph(n)
        assert int(eccentricities(g).max()) == diam

    def test_strongly_connected(self):
        g = rotator_graph(4)
        assert (eccentricities(g) >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            rotator_graph(1)


class TestStarConnectedCycles:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_size(self, n):
        g = star_connected_cycles(n)
        assert g.num_nodes == math.factorial(n) * (n - 1)

    def test_fixed_degree_three(self):
        g = star_connected_cycles(4)
        assert g.is_regular()
        assert g.max_degree == 3

    def test_scc3_degenerate_cycles(self):
        # n = 3: cycles of length 2 collapse to single edges -> degree 2
        g = star_connected_cycles(3)
        assert g.max_degree == 2
        assert mt.is_connected(g)

    def test_connected_and_vertex_count_like_ccc_analog(self):
        g = star_connected_cycles(4)
        assert mt.is_connected(g)
        # fixed-degree price: diameter grows vs the star graph
        assert mt.diameter(g) > mt.diameter(nw.star_graph(4))

    def test_validation(self):
        with pytest.raises(ValueError):
            star_connected_cycles(2)


class TestMacroStar:
    def test_size_and_degree(self):
        g = macro_star(2, 2)  # (2*2+1)! = 120 nodes
        assert g.num_nodes == 120
        assert g.is_regular()
        assert g.max_degree == 2 + 2 - 1  # n + l - 1

    def test_ms_1_n_is_star(self):
        import networkx as nx

        a = macro_star(1, 3)  # no swaps: just the 4-star
        b = nw.star_graph(4)
        assert nx.is_isomorphic(a.to_networkx(), b.to_networkx())

    def test_degree_below_same_size_star(self):
        """The macro-star selling point: same node count as S_{ln+1} with
        degree n + l − 1 < ln."""
        g = macro_star(2, 2)
        s = nw.star_graph(5)
        assert g.num_nodes == s.num_nodes
        assert g.max_degree < s.max_degree

    def test_diameter_within_3x_star(self):
        g = macro_star(2, 2)
        s = nw.star_graph(5)
        assert mt.diameter(g) <= 3 * mt.diameter(s)

    def test_nucleus_modules_from_kinds(self):
        """Macro-star's star generators carry NUCLEUS kind, swaps SUPER —
        so the §5 clustering machinery applies directly."""
        g = macro_star(2, 2)
        ma = mt.nucleus_modules(g)
        assert ma.max_module_size == 6  # (n+1)! / ... : 3-star orbits of front block
        off = mt.offmodule_links_per_node(ma)
        assert off.max() == 1  # one swap generator for l = 2

    def test_vertex_transitive_sample(self):
        assert mt.looks_vertex_transitive(macro_star(2, 2))
