"""Seeded-violation tests for the custom linter (repro.check.lint).

Every RPR rule gets a known-bad snippet that must fire and a noqa'd /
corrected twin that must stay quiet, so the rules themselves are
regression-tested — not just the clean state of the repo.
"""

import textwrap

import pytest

from repro.check import RULES, Finding, Report, lint_paths, lint_source
from repro.check.__main__ import main as check_main


def _codes(report, line=None):
    return {
        f.code
        for f in report.findings
        if line is None or f.line == line
    }


def lint(src, modname="repro.sim.sample"):
    return lint_source(textwrap.dedent(src), path="sample.py", modname=modname)


class TestRPR001UnseededRandom:
    def test_stdlib_random_call_fires(self):
        r = lint("""
            import random
            x = random.randint(0, 5)
        """)
        assert _codes(r) == {"RPR001"}

    def test_stdlib_imported_name_fires(self):
        r = lint("""
            from random import shuffle
            def scramble(items):
                shuffle(items)
        """)
        assert _codes(r) == {"RPR001"}

    def test_numpy_legacy_global_fires(self):
        r = lint("""
            import numpy as np
            noise = np.random.rand(8)
        """)
        assert _codes(r) == {"RPR001"}

    def test_numpy_seed_call_fires(self):
        r = lint("""
            import numpy
            numpy.random.seed(0)
        """)
        assert _codes(r) == {"RPR001"}

    def test_default_rng_and_seeded_random_ok(self):
        r = lint("""
            import random
            import numpy as np
            rng = np.random.default_rng(42)
            gen = random.Random(42)
            def draw(k: int, rng: np.random.Generator):
                return rng.integers(0, k)
        """)
        assert r.ok

    def test_noqa_suppresses(self):
        r = lint("""
            import random
            x = random.random()  # repro: noqa[RPR001]
        """)
        assert r.ok


class TestRPR002MutableDefaults:
    def test_list_literal_fires(self):
        r = lint("def f(xs=[]):\n    return xs\n")
        assert _codes(r) == {"RPR002"}

    def test_dict_and_ctor_fire(self):
        r = lint("""
            def f(opts={}, seen=set()):
                return opts, seen
        """)
        assert [f.code for f in r.findings] == ["RPR002", "RPR002"]

    def test_lambda_default_fires(self):
        r = lint("g = lambda xs=[]: xs\n")
        assert _codes(r) == {"RPR002"}

    def test_none_default_ok(self):
        r = lint("""
            def f(xs=None, n=3, name="x"):
                return list(xs or [])
        """)
        assert r.ok

    def test_noqa_suppresses(self):
        r = lint("def f(xs=[]):  # repro: noqa[RPR002]\n    return xs\n")
        assert r.ok


class TestRPR003ArgumentValidationAssert:
    def test_assert_on_parameter_fires(self):
        r = lint("""
            def build(n):
                assert n > 0
                return n
        """)
        assert _codes(r) == {"RPR003"}
        assert "ValueError" in r.findings[0].message

    def test_internal_assert_on_local_ok(self):
        r = lint("""
            def build(n):
                total = compute(n)
                assert total >= 0
                return total
        """)
        assert r.ok

    def test_self_attribute_assert_ok(self):
        r = lint("""
            class Box:
                def check(self):
                    assert self.size >= 0
        """)
        assert r.ok

    def test_raise_value_error_ok(self):
        r = lint("""
            def build(n):
                if n <= 0:
                    raise ValueError(f"n must be positive, got {n}")
                return n
        """)
        assert r.ok

    def test_noqa_marks_internal_invariant(self):
        r = lint("""
            def merge(a, b):
                assert len(a) == len(b)  # repro: noqa[RPR003]
                return a + b
        """)
        assert r.ok


class TestRPR004AllDrift:
    def test_unbound_export_fires(self):
        r = lint("""
            __all__ = ["exists", "ghost"]
            def exists():
                return 1
        """)
        assert _codes(r) == {"RPR004"}
        assert "ghost" in r.findings[0].message

    def test_bound_exports_ok(self):
        r = lint("""
            __all__ = ["exists", "CONST"]
            CONST = 3
            def exists():
                return 1
        """)
        assert r.ok

    def test_reexport_drift_across_package(self, tmp_path):
        pkg = tmp_path / "pkglint"
        pkg.mkdir()
        (pkg / "__init__.py").write_text(
            "from .mod import listed, unlisted\n__all__ = ['listed', 'unlisted']\n"
        )
        (pkg / "mod.py").write_text(
            "__all__ = ['listed']\n\ndef listed():\n    return 1\n\n"
            "def unlisted():\n    return 2\n"
        )
        r = lint_paths([pkg])
        assert _codes(r) == {"RPR004"}
        (f,) = r.findings
        assert "unlisted" in f.message and f.path.endswith("__init__.py")

    def test_reexport_in_sync_across_package(self, tmp_path):
        pkg = tmp_path / "pkgok"
        pkg.mkdir()
        (pkg / "__init__.py").write_text(
            "from .mod import listed\n__all__ = ['listed']\n"
        )
        (pkg / "mod.py").write_text("__all__ = ['listed']\n\ndef listed():\n    return 1\n")
        assert lint_paths([pkg]).ok

    def test_dynamic_all_skipped(self):
        r = lint("""
            __all__ = ["a"]
            __all__ += ["b"]
            def a():
                return 1
        """)
        assert r.ok


class TestRPR005ReturnAnnotations:
    def test_public_function_in_core_fires(self):
        r = lint("def degree(net):\n    return 3\n", modname="repro.core.sample")
        assert _codes(r) == {"RPR005"}

    def test_networks_method_fires(self):
        r = lint(
            """
            class Builder:
                def build(self):
                    return None
            """,
            modname="repro.networks.sample",
        )
        assert _codes(r) == {"RPR005"}

    def test_annotated_and_private_ok(self):
        r = lint(
            """
            def degree(net) -> int:
                return 3
            def _helper(net):
                return None
            """,
            modname="repro.core.sample",
        )
        assert r.ok

    def test_outside_typed_perimeter_ok(self):
        r = lint("def degree(net):\n    return 3\n", modname="repro.sim.sample")
        assert r.ok

    def test_noqa_suppresses(self):
        r = lint(
            "def degree(net):  # repro: noqa[RPR005]\n    return 3\n",
            modname="repro.core.sample",
        )
        assert r.ok


class TestNoqaAndModel:
    def test_bare_noqa_suppresses_all_rules_on_its_line(self):
        r = lint("def f(xs=[], ys={}):  # repro: noqa\n    return xs, ys\n")
        assert r.ok

    def test_noqa_for_other_code_does_not_suppress(self):
        r = lint("def f(xs=[]):  # repro: noqa[RPR001]\n    return xs\n")
        assert _codes(r) == {"RPR002"}

    def test_rule_catalog_is_complete(self):
        assert set(RULES) == {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005"}

    def test_finding_render_and_report_counts(self):
        rep = Report()
        rep.add(Finding("a.py", 3, "RPR002", "boom"))
        rep.add(Finding("a.py", 1, "RPR001", "bang"))
        assert rep.counts_by_code() == {"RPR001": 1, "RPR002": 1}
        assert rep.render().splitlines()[0] == "a.py:1: RPR001 bang"
        assert "2 findings" in rep.render()

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        r = lint_paths([bad])
        assert _codes(r) == {"RPR000"}


class TestRepoAndCli:
    def test_repo_src_is_clean(self):
        r = lint_paths(["src"])
        assert r.ok, r.render()
        assert r.checked >= 60  # sanity: the walk actually visited the tree

    def test_cli_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(xs=[]):\n    return xs\n")
        assert check_main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RPR002" in out
        good = tmp_path / "good.py"
        good.write_text("def f(xs=None):\n    return xs\n")
        assert check_main(["lint", str(good)]) == 0

    def test_repro_check_dispatch(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert repro_main(["check", "lint", str(good)]) == 0
        assert "clean" in capsys.readouterr().out
