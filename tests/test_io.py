"""Tests for network persistence."""

import numpy as np
import pytest

from repro import metrics as mt
from repro import networks as nw
from repro.io import load_network, save_network


class TestRoundTrip:
    def test_plain_network(self, tmp_path):
        g = nw.petersen()
        p = save_network(g, tmp_path / "petersen")
        h = load_network(p)
        assert h.name == g.name
        assert h.labels == g.labels
        assert h.num_edges() == g.num_edges()
        assert mt.diameter(h) == 2

    def test_ipgraph_full_state(self, tmp_path):
        g = nw.hsn_hypercube(2, 2)
        p = save_network(g, tmp_path / "hsn.npz")
        h = load_network(p)
        assert h.labels == g.labels
        assert (h.edges_src == g.edges_src).all()
        assert (h.edges_gen == g.edges_gen).all()
        assert [x.kind for x in h.generators] == [x.kind for x in g.generators]
        assert h.seed == g.seed
        # nucleus-module clustering must survive the round trip
        assert mt.intercluster_diameter(mt.nucleus_modules(h)) == 1

    def test_directed(self, tmp_path):
        g = nw.debruijn(2, 3, directed=True)
        h = load_network(save_network(g, tmp_path / "db"))
        assert h.directed
        assert h.num_edges() == g.num_edges()

    def test_suffix_added(self, tmp_path):
        p = save_network(nw.ring(5), tmp_path / "r")
        assert p.suffix == ".npz"
        assert p.exists()

    def test_apply_generator_after_load(self, tmp_path):
        g = nw.hsn_hypercube(2, 2)
        h = load_network(save_network(g, tmp_path / "g"))
        for node in (0, 3, 9):
            for k in range(len(g.generators)):
                assert h.apply_generator(node, k) == g.apply_generator(node, k)

    def test_string_labels(self, tmp_path):
        from repro.core.network import Network

        g = Network.from_edge_list(
            [("a",), ("b",), ("c",)], [(0, 1), (1, 2)], name="strs"
        )
        h = load_network(save_network(g, tmp_path / "s"))
        assert h.labels == [("a",), ("b",), ("c",)]

    def test_version_guard(self, tmp_path):
        p = save_network(nw.ring(4), tmp_path / "v")
        data = dict(np.load(p, allow_pickle=False))
        data["version"] = np.int64(99)
        np.savez_compressed(p, **data)
        with pytest.raises(ValueError, match="version"):
            load_network(p)
