"""Tests for symmetry-collapsed exhaustive fault certification
(repro.fault.orbits) and the node/edge orbit APIs (repro.metrics.symmetry).

The load-bearing property: the orbit-collapsed sweep must agree with
brute force *exactly* — same weighted integer sums, same per-pattern
verdicts after mapping through the canonical signature — while
enumerating far fewer patterns on symmetric families.
"""

import json
import tempfile

import numpy as np
import pytest

from repro import cache, networks as nw
from repro.fault.orbits import (
    OrbitDetourCache,
    brute_force_fault_sweep,
    cached_automorphism_group,
    exhaustive_fault_sweep,
    fault_signature,
)
from repro.metrics.symmetry import (
    automorphism_group,
    automorphism_orbits,
    edge_orbits,
)

EXACT_KEYS = (
    "patterns",
    "connected_patterns",
    "mean_components",
    "min_giant",
    "routability",
    "sums",
)

# >= 3 small registry families with distinct symmetry structure
FAMILIES = [
    ("hypercube", {"n": 3}),  # Cayley, |Aut| = 48
    ("ring", {"n": 8}),  # dihedral, |Aut| = 16
    ("star", {"n": 4}),  # star graph S4, 24 nodes, |Aut| = 144
]


def _build(name, params):
    return nw.build(name, **params)


class TestOrbitAPIs:
    def test_hypercube_single_node_orbit(self):
        g = nw.hypercube(3)
        assert (automorphism_orbits(g) == 0).all()

    def test_hypercube_single_edge_orbit(self):
        g = nw.hypercube(3)
        edges, labels = edge_orbits(g)
        assert len(edges) == 12
        assert (labels == 0).all()

    def test_path_orbits_mirror(self):
        g = nw.build("path", n=4)
        orbits = automorphism_orbits(g)
        assert orbits.tolist() == [0, 1, 1, 0]

    def test_group_is_sorted_with_identity_first(self):
        g = nw.ring(6)
        group = automorphism_group(g)
        assert group.shape == (12, 6)  # dihedral group D6
        assert (group[0] == np.arange(6)).all()
        for a, b in zip(group, group[1:]):
            assert tuple(a) < tuple(b)

    def test_explicit_group_shape_validated(self):
        g = nw.ring(6)
        with pytest.raises(ValueError, match="group"):
            automorphism_orbits(g, group=np.zeros((2, 5), dtype=np.int64))


class TestExactAgreement:
    @pytest.mark.parametrize("name,params", FAMILIES)
    @pytest.mark.parametrize("kind", ["node", "link"])
    def test_summary_equals_brute_force(self, name, params, kind):
        g = _build(name, params)
        k = 2
        ex = exhaustive_fault_sweep(g, k, kind=kind)
        bf = brute_force_fault_sweep(g, k, kind=kind)
        for key in EXACT_KEYS:
            assert ex["summary"][key] == bf["summary"][key], key

    @pytest.mark.parametrize("name,params", FAMILIES)
    def test_per_pattern_verdicts_match_via_signature(self, name, params):
        g = _build(name, params)
        group = cached_automorphism_group(g)
        ex = exhaustive_fault_sweep(g, 2, kind="node", group=group)
        bf = brute_force_fault_sweep(g, 2, kind="node")
        for row in bf["patterns"]:
            sig = fault_signature(g, row["pattern"], kind="node", group=group)
            verdict = ex["by_signature"][sig]
            for key in ("components", "giant", "connected", "conn_pairs"):
                assert row[key] == verdict[key], (row["pattern"], key)

    def test_k3_agreement_on_hypercube(self):
        g = nw.hypercube(3)
        ex = exhaustive_fault_sweep(g, 3, kind="node")
        bf = brute_force_fault_sweep(g, 3, kind="node")
        for key in EXACT_KEYS:
            assert ex["summary"][key] == bf["summary"][key], key

    def test_weights_cover_all_patterns(self):
        g = nw.ring(8)
        ex = exhaustive_fault_sweep(g, 2, kind="link")
        assert sum(r["weight"] for r in ex["orbits"]) == ex["summary"]["patterns"]


class TestCollapse:
    def test_ten_x_collapse_on_symmetric_family(self):
        g = nw.hypercube(4)
        ex = exhaustive_fault_sweep(g, 3, kind="node")
        s = ex["summary"]
        assert s["patterns"] == 560
        assert s["collapse_ratio"] >= 10.0
        assert s["orbits"] <= 56

    def test_collapse_gauge_recorded(self):
        from repro import obs

        g = nw.hypercube(3)
        obs.reset()
        obs.enable()
        try:
            exhaustive_fault_sweep(g, 2, kind="node")
            gauges = obs.report()["gauges"]
            assert gauges.get("orbits.collapse_ratio", 0) > 1.0
        finally:
            obs.disable()
            obs.reset()

    def test_k_zero_single_orbit(self):
        g = nw.hypercube(3)
        ex = exhaustive_fault_sweep(g, 0, kind="node")
        assert ex["summary"]["patterns"] == 1
        assert ex["summary"]["all_connected"]


class TestSignature:
    def test_invariant_under_group_action(self):
        g = nw.hypercube(3)
        group = cached_automorphism_group(g)
        base = (0, 3)
        sig = fault_signature(g, base, kind="node", group=group)
        for perm in group[::7]:
            image = tuple(int(perm[v]) for v in base)
            assert fault_signature(g, image, kind="node", group=group) == sig

    def test_link_signature_invariant(self):
        g = nw.ring(8)
        group = cached_automorphism_group(g)
        base = [(0, 1), (3, 4)]
        sig = fault_signature(g, base, kind="link", group=group)
        perm = group[5]
        image = [(int(perm[u]), int(perm[v])) for u, v in base]
        assert fault_signature(g, image, kind="link", group=group) == sig

    def test_distinct_orbits_distinct_signatures(self):
        g = nw.ring(8)
        # adjacent vs antipodal node pairs are not automorphic on a ring
        sig_adj = fault_signature(g, (0, 1), kind="node")
        sig_far = fault_signature(g, (0, 4), kind="node")
        assert sig_adj != sig_far


class TestDeterminismAndCache:
    def test_bit_identical_across_jobs(self):
        g = nw.hypercube(4)
        a = exhaustive_fault_sweep(g, 2, kind="node", jobs=1)
        b = exhaustive_fault_sweep(g, 2, kind="node", jobs=4)
        assert repr(a) == repr(b)

    def test_group_artifact_round_trips(self):
        with tempfile.TemporaryDirectory() as d:
            cache.configure(d)
            try:
                g = nw.build("hypercube", n=3)
                g1 = cached_automorphism_group(g)
                g2 = cached_automorphism_group(g)
                assert (g1 == g2).all()
                store = cache.get_cache()
                assert list(store.root.glob("*/*.orb.npz"))
            finally:
                cache.set_cache(None)


class TestValidation:
    def setup_method(self):
        self.g = nw.ring(8)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError, match="k must be >= 0"):
            exhaustive_fault_sweep(self.g, -1)

    def test_non_integer_k_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            exhaustive_fault_sweep(self.g, 1.5)

    def test_all_nodes_faulted_rejected(self):
        with pytest.raises(ValueError):
            exhaustive_fault_sweep(self.g, 8, kind="node")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            brute_force_fault_sweep(self.g, 1, kind="router")


class TestOrbitDetourCache:
    def test_symmetric_queries_share_entries(self):
        g = nw.hypercube(3)
        c = OrbitDetourCache(g)
        key1, g1 = c.canonize([0], [], 1, 7)
        c.put(key1, g1, (1, 3, 7))
        # image of the whole query under a non-identity automorphism
        perm = c.group[5]
        key2, g2 = c.canonize([int(perm[0])], [], int(perm[1]), int(perm[7]))
        assert key2 == key1
        path = c.get(key2, g2)
        assert path[0] == int(perm[1]) and path[-1] == int(perm[7])

    def test_mapped_path_is_valid_walk(self):
        g = nw.hypercube(3)
        c = OrbitDetourCache(g)
        key1, g1 = c.canonize([], [(0, 1)], 0, 1)
        c.put(key1, g1, (0, 2, 3, 1))
        perm = c.group[10]
        key2, g2 = c.canonize(
            [], [(int(perm[0]), int(perm[1]))], int(perm[0]), int(perm[1])
        )
        path = c.get(key2, g2)
        for x, y in zip(path, path[1:]):
            assert y in g.neighbors(x)

    def test_lru_bound_and_info(self):
        g = nw.ring(8)
        c = OrbitDetourCache(g, maxsize=2)
        for dst in (1, 2, 3):
            key, gi = c.canonize([], [], 0, dst)
            c.put(key, gi, (0, dst))
        info = c.cache_info()
        assert info["currsize"] <= 2
        assert info["evictions"] >= 1

    def test_none_is_a_cached_verdict(self):
        from repro.fault.orbits import _MISS

        g = nw.ring(8)
        c = OrbitDetourCache(g)
        key, gi = c.canonize([4], [], 0, 4)
        assert c.get(key, gi) is _MISS
        c.put(key, gi, None)
        assert c.get(key, gi) is None

    def test_bad_maxsize_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            OrbitDetourCache(nw.ring(8), maxsize=0)
