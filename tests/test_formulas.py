"""Validation of every closed-form family descriptor against exhaustive BFS.

This is the backbone of the figure reproduction: the large-size points in
Figures 2-5 come from these formulas, so each one is checked on every size
small enough to build.
"""

import math

import pytest

from repro import metrics as mt
from repro import networks as nw
from repro.analysis.formulas import (
    ccc_point,
    complete_cn_point,
    debruijn_point,
    folded_hypercube_point,
    hcn_point,
    hsn_point,
    hypercube_point,
    ring_cn_point,
    ring_point,
    shuffle_exchange_point,
    star_diameter,
    star_point,
    super_flip_point,
    supergen_module_quotient,
    symmetric_superip_point,
    torus_point,
)
from repro.core.superip import SuperGeneratorSet


class TestBaselineFormulas:
    @pytest.mark.parametrize("n", [6, 9, 16])
    def test_ring(self, n):
        pt = ring_point(n)
        g = nw.ring(n)
        assert pt.degree == g.max_degree
        assert pt.diameter == mt.diameter(g)

    def test_ring_modules(self):
        pt = ring_point(16, module_size=4)
        g = nw.ring(16)
        ma = mt.contiguous_modules(g, 4)
        assert pt.i_diameter == mt.intercluster_diameter(ma)
        assert pt.i_degree == pytest.approx(mt.intercluster_degree(ma))

    @pytest.mark.parametrize("k,dims", [(4, 2), (5, 2), (3, 3)])
    def test_torus(self, k, dims):
        pt = torus_point(k, dims)
        g = nw.torus([k] * dims)
        assert pt.num_nodes == g.num_nodes
        assert pt.degree == g.max_degree
        assert pt.diameter == mt.diameter(g)

    def test_torus_modules(self):
        pt = torus_point(8, 2, module_side=4)
        g = nw.torus([8, 8])
        ma = mt.modules_by_key(g, lambda lab: (lab[0] // 4, lab[1] // 4))
        assert pt.i_diameter == mt.intercluster_diameter(ma)
        assert pt.i_degree == pytest.approx(mt.intercluster_degree(ma))

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_hypercube(self, n):
        pt = hypercube_point(n)
        g = nw.hypercube(n)
        assert (pt.num_nodes, pt.degree, pt.diameter) == (
            g.num_nodes, g.max_degree, mt.diameter(g),
        )

    @pytest.mark.parametrize("n,c", [(5, 2), (6, 3), (7, 4)])
    def test_hypercube_modules(self, n, c):
        pt = hypercube_point(n, module_bits=c)
        g = nw.hypercube(n)
        ma = mt.subcube_modules(g, c)
        assert pt.i_degree == mt.intercluster_degree(ma)
        assert pt.i_diameter == mt.intercluster_diameter(ma)
        assert pt.avg_i_distance == pytest.approx(
            mt.average_intercluster_distance(ma)
        )

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_folded_hypercube(self, n):
        pt = folded_hypercube_point(n)
        g = nw.folded_hypercube(n)
        assert pt.degree == g.max_degree
        assert pt.diameter == mt.diameter(g)

    @pytest.mark.parametrize("n,c", [(5, 2), (6, 3)])
    def test_folded_hypercube_modules(self, n, c):
        pt = folded_hypercube_point(n, module_bits=c)
        g = nw.folded_hypercube(n)
        ma = mt.subcube_modules(g, c)
        assert pt.i_degree == mt.intercluster_degree(ma)
        assert pt.i_diameter == mt.intercluster_diameter(ma)

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_star(self, n):
        pt = star_point(n)
        g = nw.star_graph(n)
        assert pt.num_nodes == g.num_nodes
        assert pt.degree == g.max_degree
        assert pt.diameter == mt.diameter(g) == star_diameter(n)

    def test_star_modules(self):
        pt = star_point(5, module_substar=3)
        g = nw.star_graph(5)
        ma = mt.modules_by_key(g, lambda lab: lab[3:])
        assert pt.i_degree == mt.intercluster_degree(ma)

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_debruijn(self, n):
        pt = debruijn_point(n)
        g = nw.debruijn(2, n)
        assert pt.degree == g.max_degree
        assert mt.diameter(g) <= pt.diameter  # undirected can shortcut

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_ccc(self, n):
        pt = ccc_point(n)
        g = nw.cube_connected_cycles(n)
        assert pt.num_nodes == g.num_nodes
        assert pt.degree == g.max_degree
        assert pt.diameter == mt.diameter(g)

    def test_ccc_modules(self):
        pt = ccc_point(4)
        g = nw.cube_connected_cycles(4)
        ma = mt.modules_by_key(g, lambda lab: lab[0])  # one cycle per module
        assert pt.i_degree == pytest.approx(mt.intercluster_degree(ma))
        assert pt.i_diameter == mt.intercluster_diameter(ma)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_shuffle_exchange(self, n):
        pt = shuffle_exchange_point(n)
        g = nw.shuffle_exchange(n)
        assert pt.num_nodes == g.num_nodes
        assert pt.degree >= g.max_degree
        assert mt.diameter(g) <= pt.diameter


SUPERIP_CASES = [
    ("hsn", hsn_point, nw.hsn),
    ("ring_cn", ring_cn_point, nw.ring_cn),
    ("complete_cn", complete_cn_point, nw.complete_cn),
    ("super_flip", super_flip_point, nw.super_flip),
]


class TestSuperIPFormulas:
    @pytest.mark.parametrize("name,point_fn,builder", SUPERIP_CASES)
    @pytest.mark.parametrize("l,n", [(2, 2), (3, 2), (2, 3)])
    def test_against_measurement(self, name, point_fn, builder, l, n):
        nuc = nw.hypercube_nucleus(n)
        pt = point_fn(l, nuc.size(), n, n, nuc.name)
        g = builder(l, nuc)
        ma = mt.nucleus_modules(g)
        assert pt.num_nodes == g.num_nodes
        assert pt.degree == g.max_degree
        assert pt.diameter == mt.diameter(g)
        assert pt.i_degree == pytest.approx(mt.intercluster_degree(ma))
        assert pt.i_diameter == mt.intercluster_diameter(ma)
        assert pt.avg_i_distance == pytest.approx(
            mt.average_intercluster_distance(ma)
        )

    def test_hcn_point(self):
        pt = hcn_point(3)
        g = nw.hsn_hypercube(2, 3)
        assert pt.num_nodes == 64
        assert pt.degree == g.max_degree
        assert pt.diameter == mt.diameter(g)

    @pytest.mark.parametrize("fam,factory,builder", [
        ("symHSN", SuperGeneratorSet.transpositions, nw.hsn),
        ("symCN", SuperGeneratorSet.ring, nw.ring_cn),
        ("symFlip", SuperGeneratorSet.flips, nw.super_flip),
    ])
    def test_symmetric_points(self, fam, factory, builder):
        nuc = nw.hypercube_nucleus(2)
        sgs = factory(2)
        pt = symmetric_superip_point(fam, sgs, nuc.size(), 2, 2, nuc.name)
        g = builder(2, nuc, symmetric=True)
        assert pt.num_nodes == g.num_nodes
        assert pt.degree == g.max_degree
        assert pt.diameter == mt.diameter(g)


class TestQuotientGraph:
    def test_hsn_quotient_is_generalized_hypercube(self):
        import networkx as nx

        q = supergen_module_quotient(SuperGeneratorSet.transpositions(3), 4)
        gh = nw.generalized_hypercube([4, 4])
        assert nx.is_isomorphic(q.to_networkx(), gh.to_networkx())

    def test_ring_cn_quotient_is_debruijn_like(self):
        """For l = 2 the ring-CN quotient is the complete graph K_M."""
        q = supergen_module_quotient(SuperGeneratorSet.ring(2), 5)
        assert q.num_nodes == 5
        assert q.num_edges() == 10  # K5

    def test_quotient_distances_match_full_network(self):
        """Quotient distances = exact minimum off-module hop counts."""
        l, n = 3, 2
        g = nw.ring_cn_hypercube(l, n)
        ma = mt.nucleus_modules(g)
        full = mt.intercluster_distances(ma)
        q = supergen_module_quotient(SuperGeneratorSet.ring(l), 1 << n)
        from repro.metrics.distances import bfs_distances
        import numpy as np

        qd = bfs_distances(q, np.arange(q.num_nodes))
        assert int(full.max()) == int(qd.max())
        assert sorted(np.asarray(full).ravel()) == sorted(qd.ravel())

    def test_quotient_size_guard(self):
        with pytest.raises(ValueError, match="too large"):
            supergen_module_quotient(SuperGeneratorSet.ring(8), 64, max_nodes=100)

    def test_flip_quotient_i_diameter(self):
        pt = super_flip_point(3, 8, 3, 3, "Q3")
        assert pt.i_diameter == 2  # = t = l - 1


class TestFamilyPointProperties:
    def test_costs(self):
        pt = hypercube_point(6, module_bits=4)
        assert pt.dd_cost == 36
        assert pt.id_cost == 12.0
        assert pt.ii_cost == 4.0
        assert pt.log2_n == 6.0

    def test_none_costs(self):
        pt = hypercube_point(6)
        assert pt.id_cost is None
        assert pt.ii_cost is None

    def test_torus_validation(self):
        with pytest.raises(ValueError):
            torus_point(2, 3)
