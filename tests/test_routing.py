"""Tests for all routers: Theorem-4.1 sorter, family routers, BFS tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import networks as nw
from repro.core.superip import SuperGeneratorSet, build_super_ip_graph
from repro.metrics.distances import bfs_distances, single_source_distances
from repro.routing import (
    NextHopTable,
    SuperIPRouter,
    debruijn_route,
    ecube_route,
    shortest_path,
    star_route,
    star_route_length_bound,
    verify_route,
)

FAMILIES = {
    "transpositions": SuperGeneratorSet.transpositions,
    "ring": SuperGeneratorSet.ring,
    "complete": SuperGeneratorSet.complete_shifts,
    "flips": SuperGeneratorSet.flips,
}


class TestSuperIPRouter:
    @pytest.mark.parametrize("fam", list(FAMILIES))
    @pytest.mark.parametrize("sym", [False, True])
    def test_all_pairs_valid_and_bounded(self, fam, sym):
        nuc = nw.hypercube_nucleus(1)
        sgs = FAMILIES[fam](3)
        g = build_super_ip_graph(nuc, sgs, symmetric=sym)
        r = SuperIPRouter(nuc, sgs, symmetric=sym)
        bound = r.max_route_length()
        for s in range(g.num_nodes):
            for d in range(g.num_nodes):
                path = r.route_nodes(g, s, d)
                assert path[0] == s and path[-1] == d
                assert verify_route(g, path)
                assert len(path) - 1 <= bound

    def test_bound_attained_somewhere(self):
        """Theorem 4.1 is exact: some pair needs the full l·D_G + t."""
        nuc = nw.hypercube_nucleus(2)
        sgs = SuperGeneratorSet.transpositions(2)
        g = build_super_ip_graph(nuc, sgs)
        d = bfs_distances(g, np.arange(g.num_nodes))
        r = SuperIPRouter(nuc, sgs)
        assert d.max() == r.max_route_length()

    def test_route_matches_bfs_for_worst_pair(self):
        nuc = nw.hypercube_nucleus(2)
        sgs = SuperGeneratorSet.transpositions(2)
        g = build_super_ip_graph(nuc, sgs)
        r = SuperIPRouter(nuc, sgs)
        d = bfs_distances(g, [0])[0]
        far = int(np.argmax(d))
        path = r.route_nodes(g, 0, far)
        assert len(path) - 1 == d[far]  # router is optimal at the diameter

    def test_trivial_route(self):
        nuc = nw.hypercube_nucleus(1)
        sgs = SuperGeneratorSet.transpositions(2)
        r = SuperIPRouter(nuc, sgs)
        g = build_super_ip_graph(nuc, sgs)
        assert r.route_nodes(g, 3, 3) == [3]

    def test_star_nucleus_router(self):
        nuc = nw.star_nucleus(3)
        sgs = SuperGeneratorSet.ring(2)
        g = build_super_ip_graph(nuc, sgs)
        r = SuperIPRouter(nuc, sgs)
        rng = np.random.default_rng(3)
        for _ in range(40):
            s, d = rng.integers(0, g.num_nodes, 2)
            path = r.route_nodes(g, int(s), int(d))
            assert verify_route(g, path)
            assert len(path) - 1 <= r.max_route_length()

    def test_symmetric_router_colors(self):
        nuc = nw.hypercube_nucleus(2)
        sgs = SuperGeneratorSet.transpositions(3)
        g = build_super_ip_graph(nuc, sgs, symmetric=True)
        r = SuperIPRouter(nuc, sgs, symmetric=True)
        rng = np.random.default_rng(5)
        for _ in range(50):
            s, d = rng.integers(0, g.num_nodes, 2)
            path = r.route_nodes(g, int(s), int(d))
            assert verify_route(g, path)
            assert path[-1] == d

    def test_route_labels_direct(self):
        nuc = nw.hypercube_nucleus(1)
        sgs = SuperGeneratorSet.transpositions(2)
        r = SuperIPRouter(nuc, sgs)
        src = (0, 1, 0, 1)
        dst = (1, 0, 1, 0)
        path = r.route_labels(src, dst)
        assert path[0] == src and path[-1] == dst


class TestFamilyRouters:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 6), st.integers(0, 1000), st.integers(0, 1000))
    def test_ecube_optimal(self, n, a, b):
        a %= 1 << n
        b %= 1 << n
        la = tuple((a >> (n - 1 - i)) & 1 for i in range(n))
        lb = tuple((b >> (n - 1 - i)) & 1 for i in range(n))
        path = ecube_route(la, lb)
        assert path[0] == la and path[-1] == lb
        assert len(path) - 1 == bin(a ^ b).count("1")
        for u, v in zip(path, path[1:]):
            assert sum(x != y for x, y in zip(u, v)) == 1

    def test_ecube_length_mismatch(self):
        with pytest.raises(ValueError):
            ecube_route((0, 1), (0, 1, 0))

    @settings(max_examples=40, deadline=None)
    @given(st.permutations(list(range(5))), st.permutations(list(range(5))))
    def test_star_route_valid_and_bounded(self, src, dst):
        src, dst = tuple(src), tuple(dst)
        path = star_route(src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) - 1 <= star_route_length_bound(5)
        # every hop is a star-generator move (swap position 0 with some i)
        for u, v in zip(path, path[1:]):
            diff = [i for i in range(5) if u[i] != v[i]]
            assert len(diff) == 2 and 0 in diff
            i = [d for d in diff if d != 0][0]
            assert u[0] == v[i] and u[i] == v[0]

    def test_star_route_against_bfs(self):
        g = nw.star_graph(4)
        d = single_source_distances(g, g.node_of(tuple(range(4))))
        # greedy routing is within the diameter bound but not always optimal;
        # check against the known bound and a couple of optimal cases
        for node, lab in enumerate(g.labels):
            path = star_route(lab, tuple(range(4)))
            assert len(path) - 1 >= d[node]  # can't beat BFS
            assert len(path) - 1 <= star_route_length_bound(4)

    def test_star_route_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            star_route((0, 1, 2), (0, 1, 3))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 5), st.integers(0, 500), st.integers(0, 500))
    def test_debruijn_route(self, n, a, b):
        la = tuple((a >> i) & 1 for i in range(n))
        lb = tuple((b >> i) & 1 for i in range(n))
        path = debruijn_route(la, lb)
        assert path[0] == la and path[-1] == lb
        assert len(path) - 1 <= n
        for u, v in zip(path, path[1:]):
            assert v[:-1] == u[1:]  # shift edge

    def test_debruijn_overlap_shortcut(self):
        # src suffix == dst prefix: route uses the overlap
        path = debruijn_route((0, 1, 1), (1, 1, 0))
        assert len(path) - 1 == 1


class TestTableRouting:
    def test_shortest_path_endpoints(self):
        g = nw.hypercube(4)
        p = shortest_path(g, 0, 15)
        assert p[0] == 0 and p[-1] == 15
        assert len(p) - 1 == 4

    def test_shortest_path_trivial(self):
        g = nw.ring(5)
        assert shortest_path(g, 2, 2) == [2]

    def test_shortest_path_disconnected(self):
        from repro.core.network import Network

        net = Network([(0,), (1,)], [], [])
        with pytest.raises(ValueError):
            shortest_path(net, 0, 1)

    def test_next_hop_table_paths_are_shortest(self):
        g = nw.cube_connected_cycles(3)
        table = NextHopTable(g)
        d = bfs_distances(g, np.arange(g.num_nodes))
        rng = np.random.default_rng(0)
        for _ in range(60):
            s, t = rng.integers(0, g.num_nodes, 2)
            p = table.path(int(s), int(t))
            assert len(p) - 1 == d[t, s]

    def test_next_hop_self(self):
        g = nw.ring(6)
        table = NextHopTable(g)
        assert table.next_hop(3, 3) == 3

    def test_table_rejects_disconnected(self):
        from repro.core.network import Network

        net = Network.from_edge_list([(i,) for i in range(4)], [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            NextHopTable(net)


class TestDirectedCNRouting:
    def test_directed_ring_cn_router(self):
        """The sorting router also serves directed CNs: only the forward
        shift exists, and every route respects arc directions."""
        import numpy as np

        from repro import networks as nw
        from repro.core.superip import build_super_ip_graph

        nuc = nw.hypercube_nucleus(1)
        sgs = SuperGeneratorSet.directed_ring(3)
        g = build_super_ip_graph(nuc, sgs, directed=True)
        r = SuperIPRouter(nuc, sgs)
        csr = g.adjacency_csr()  # directed
        rng = np.random.default_rng(0)
        for _ in range(30):
            s, d = rng.integers(0, g.num_nodes, 2)
            path = r.route_nodes(g, int(s), int(d))
            for u, v in zip(path, path[1:]):
                assert v in csr.indices[csr.indptr[u] : csr.indptr[u + 1]]
            assert len(path) - 1 <= r.max_route_length()

    def test_directed_diameter_formula(self):
        from repro import metrics as mt
        from repro import networks as nw
        from repro.core.superip import diameter_formula
        from repro.metrics.distances import eccentricities

        nuc = nw.hypercube_nucleus(1)
        g = nw.directed_cn(3, nuc)
        d = int(eccentricities(g).max())
        assert d == diameter_formula(nuc.diameter(), SuperGeneratorSet.directed_ring(3))
