"""Tests for bitonic-sort emulation, all-to-all schedules, grand summary."""

import math

import numpy as np
import pytest

from repro.algorithms import (
    HypercubeEmulator,
    all_to_all_cost_on_hsn,
    all_to_all_cost_on_hypercube,
    bitonic_sort,
    hypercube_all_to_all_rounds,
)
from repro.analysis import grand_comparison


class TestBitonicSort:
    @pytest.fixture(scope="class")
    def emu(self):
        return HypercubeEmulator(2, 2)

    def _ranks(self, emu):
        return np.array(
            [int("".join(map(str, lab)), 2) for lab in emu.guest.labels]
        )

    def test_sorts_random_input(self, emu):
        rng = np.random.default_rng(1)
        vals = rng.random(emu.guest.num_nodes)
        out, _ = bitonic_sort(emu, vals)
        by_rank = out[np.argsort(self._ranks(emu))]
        assert (np.diff(by_rank) >= 0).all()
        assert sorted(out.tolist()) == sorted(vals.tolist())

    def test_sorts_adversarial_inputs(self, emu):
        n = emu.guest.num_nodes
        for vals in (np.arange(n)[::-1], np.zeros(n), np.arange(n) % 3):
            out, _ = bitonic_sort(emu, vals.astype(float))
            by_rank = out[np.argsort(self._ranks(emu))]
            assert (np.diff(by_rank) >= 0).all()

    def test_step_bound_constant_slowdown(self, emu):
        """log N (log N + 1)/2 stages, each ≤ 3 host steps."""
        rng = np.random.default_rng(2)
        _, steps = bitonic_sort(emu, rng.random(emu.guest.num_nodes))
        d = emu.dims
        stages = d * (d + 1) // 2
        assert stages <= steps <= 3 * stages

    def test_three_block_instance(self):
        emu = HypercubeEmulator(3, 1)
        rng = np.random.default_rng(3)
        vals = rng.random(emu.guest.num_nodes)
        out, steps = bitonic_sort(emu, vals)
        ranks = np.array(
            [int("".join(map(str, lab)), 2) for lab in emu.guest.labels]
        )
        assert (np.diff(out[np.argsort(ranks)]) >= 0).all()


class TestAllToAll:
    def test_rounds(self):
        rounds = hypercube_all_to_all_rounds(4)
        assert len(rounds) == 4
        assert all(v == 8 for _, v in rounds)

    def test_hypercube_cost_formula(self):
        # (N/2) * log N
        assert all_to_all_cost_on_hypercube(5) == 16 * 5

    def test_hsn_cost_within_3x(self):
        """The paper's 'asymptotically optimal slowdown' for total
        exchange: the emulated cost is between 1x and 3x the hypercube's."""
        emu = HypercubeEmulator(2, 3)
        base = all_to_all_cost_on_hypercube(emu.dims)
        emulated = all_to_all_cost_on_hsn(emu)
        assert base <= emulated <= 3 * base

    def test_hsn_cost_exact_profile(self):
        """Block-0 dimensions cost 1x, the rest 3x (or less when swaps
        collapse): for HSN(2,Q2), cost = (N/2)·(2·1 + 2·3) at worst."""
        emu = HypercubeEmulator(2, 2)
        emulated = all_to_all_cost_on_hsn(emu)
        volume = 1 << (emu.dims - 1)
        assert emulated == volume * sum(emu.slowdown_per_dimension)

    def test_validation(self):
        with pytest.raises(ValueError):
            hypercube_all_to_all_rounds(0)


class TestGrandComparison:
    @pytest.fixture(scope="class")
    def table(self):
        return grand_comparison(64, module_cap=16)

    def test_has_many_families(self, table):
        assert len(table) >= 10
        names = {r["network"] for r in table}
        assert any("HSN" in n for n in names)
        assert any(n.startswith("Q") for n in names)

    def test_sorted_by_ii(self, table):
        ii = [r["II"] for r in table]
        assert ii == sorted(ii)

    def test_all_measured_fields_present(self, table):
        for r in table:
            for key in ("degree", "diameter", "avg dist", "I-degree", "DD", "II"):
                assert r[key] is not None

    def test_superip_in_top_half_by_ii(self, table):
        names = [r["network"] for r in table]
        idx = next(i for i, n in enumerate(names) if "HSN" in n)
        assert idx < len(names) / 2

    def test_cli_summary(self, capsys):
        from repro.__main__ import main

        assert main(["summary", "--size", "32", "--module-cap", "8"]) == 0
        out = capsys.readouterr().out
        assert "II" in out
