"""Property-based tests (hypothesis) on the model's core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ipgraph import build_ip_graph
from repro.core.permutation import Permutation, transposition
from repro.core.superip import (
    SuperGeneratorSet,
    build_super_ip_graph,
    diameter_formula,
    min_supergen_steps,
    min_supergen_steps_symmetric,
    reachable_arrangements,
    super_ip_size,
    symmetric_super_ip_size,
)
from repro.metrics.distances import bfs_distances, diameter
from repro.networks.nuclei import complete_nucleus, hypercube_nucleus


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def block_perm_sets(max_l: int = 5):
    """Random super-generator sets: nontrivial block permutations that can
    front every block (we ensure this by always including one transposition
    chain or cycle)."""

    def make(l, extra_imgs):
        perms = [("L1", Permutation(tuple((i + 1) % l for i in range(l))))]
        perms.append(("R1", perms[0][1].inverse()))
        for k, img in enumerate(extra_imgs):
            p = Permutation(img)
            if not p.is_identity():
                perms.append((f"x{k}", p))
        return SuperGeneratorSet(name="random", l=l, block_perms=tuple(perms))

    return st.integers(2, max_l).flatmap(
        lambda l: st.lists(
            st.permutations(list(range(l))), min_size=0, max_size=2
        ).map(lambda extras: make(l, extras))
    )


def small_generator_sets(max_k: int = 5):
    """Random involution-closed generator sets over k positions."""

    def close(k, imgs):
        perms = {Permutation(img) for img in imgs}
        perms |= {p.inverse() for p in perms}
        perms.discard(Permutation(range(k)))
        if not perms:
            perms = {transposition(k, 0, 1)}
        return sorted(perms, key=lambda p: p.img)

    return st.integers(2, max_k).flatmap(
        lambda k: st.lists(
            st.permutations(list(range(k))), min_size=1, max_size=3
        ).map(lambda imgs: (k, close(k, imgs)))
    )


# ----------------------------------------------------------------------
# IP-graph engine invariants
# ----------------------------------------------------------------------
class TestIPGraphProperties:
    @settings(max_examples=30, deadline=None)
    @given(small_generator_sets())
    def test_degree_bounded_by_generators(self, kg):
        """Theorem 3.1 for arbitrary generator sets."""
        k, gens = kg
        g = build_ip_graph(tuple(range(k)), gens, max_nodes=50_000)
        assert g.max_degree <= len(gens)

    @settings(max_examples=30, deadline=None)
    @given(small_generator_sets())
    def test_cayley_graph_is_regular(self, kg):
        """Distinct-symbol seeds give Cayley graphs: always regular."""
        k, gens = kg
        g = build_ip_graph(tuple(range(k)), gens, max_nodes=50_000)
        assert g.is_regular()

    @settings(max_examples=20, deadline=None)
    @given(small_generator_sets(4), st.integers(0, 100))
    def test_seed_choice_preserves_graph(self, kg, pick):
        """Any generated label used as seed regenerates the same node set."""
        k, gens = kg
        g = build_ip_graph(tuple(range(k)), gens, max_nodes=50_000)
        node = pick % g.num_nodes
        g2 = build_ip_graph(g.labels[node], gens, max_nodes=50_000)
        assert set(g2.labels) == set(g.labels)

    @settings(max_examples=20, deadline=None)
    @given(small_generator_sets(4))
    def test_repeated_symbols_shrink(self, kg):
        """Merging two symbols can never grow the node count."""
        k, gens = kg
        distinct = build_ip_graph(tuple(range(k)), gens, max_nodes=50_000)
        seed = (0,) * 2 + tuple(range(2, k))
        merged = build_ip_graph(seed, gens, max_nodes=50_000)
        assert merged.num_nodes <= distinct.num_nodes


# ----------------------------------------------------------------------
# super-IP invariants for random super-generator sets
# ----------------------------------------------------------------------
class TestSuperIPProperties:
    @settings(max_examples=25, deadline=None)
    @given(block_perm_sets(4))
    def test_t_bounds(self, sgs):
        """l−1 ≤ t ≤ t_S for any valid super-generator set (the paper notes
        t ≥ l−1 always)."""
        t = min_supergen_steps(sgs)
        ts = min_supergen_steps_symmetric(sgs)
        assert sgs.l - 1 <= t <= ts

    @settings(max_examples=25, deadline=None)
    @given(block_perm_sets(4))
    def test_arrangements_form_group(self, sgs):
        """Reachable arrangements are closed under the generators and have
        size dividing l! (Lagrange)."""
        arrs = reachable_arrangements(sgs)
        perms = sgs.perms()
        for a in arrs:
            for p in perms:
                assert p(a) in arrs
        assert math.factorial(sgs.l) % len(arrs) == 0

    @settings(max_examples=10, deadline=None)
    @given(block_perm_sets(3), st.sampled_from([2, 3]))
    def test_size_theorem_any_supergens(self, sgs, m_pick):
        """Theorem 3.2 (N = M^l) holds for arbitrary super-generator sets,
        not just the paper's three families."""
        nuc = complete_nucleus(m_pick)
        g = build_super_ip_graph(nuc, sgs, max_nodes=200_000)
        assert g.num_nodes == super_ip_size(nuc.size(), sgs.l)

    @settings(max_examples=8, deadline=None)
    @given(block_perm_sets(3))
    def test_diameter_theorem_any_supergens(self, sgs):
        """Theorem 4.1 upper bound holds for arbitrary super-generator sets
        (equality is only guaranteed with the paper's preconditions, so we
        assert ≤)."""
        nuc = hypercube_nucleus(1)
        g = build_super_ip_graph(nuc, sgs, max_nodes=100_000)
        assert diameter(g) <= diameter_formula(nuc.diameter(), sgs)

    @settings(max_examples=8, deadline=None)
    @given(block_perm_sets(3))
    def test_symmetric_size_any_supergens(self, sgs):
        nuc = hypercube_nucleus(1)
        g = build_super_ip_graph(nuc, sgs, symmetric=True, max_nodes=100_000)
        assert g.num_nodes == symmetric_super_ip_size(nuc.size(), sgs)

    @settings(max_examples=10, deadline=None)
    @given(block_perm_sets(3))
    def test_router_bound_any_supergens(self, sgs):
        """The Theorem-4.1 router stays valid and bounded for arbitrary
        super-generator sets."""
        from repro.routing import SuperIPRouter, verify_route

        nuc = hypercube_nucleus(1)
        g = build_super_ip_graph(nuc, sgs, max_nodes=100_000)
        r = SuperIPRouter(nuc, sgs)
        rng = np.random.default_rng(0)
        for _ in range(10):
            s, d = rng.integers(0, g.num_nodes, 2)
            path = r.route_nodes(g, int(s), int(d))
            assert verify_route(g, path)
            assert len(path) - 1 <= r.max_route_length()


# ----------------------------------------------------------------------
# metric invariants
# ----------------------------------------------------------------------
class TestMetricProperties:
    @settings(max_examples=15, deadline=None)
    @given(small_generator_sets(4))
    def test_distance_symmetry(self, kg):
        k, gens = kg
        g = build_ip_graph(tuple(range(k)), gens, max_nodes=50_000)
        if g.num_nodes > 200:
            return
        d = bfs_distances(g, np.arange(g.num_nodes))
        assert (d == d.T).all()

    @settings(max_examples=15, deadline=None)
    @given(small_generator_sets(4))
    def test_triangle_inequality(self, kg):
        k, gens = kg
        g = build_ip_graph(tuple(range(k)), gens, max_nodes=50_000)
        if g.num_nodes > 120:
            return
        d = bfs_distances(g, np.arange(g.num_nodes)).astype(np.int64)
        n = g.num_nodes
        for a in range(0, n, max(1, n // 8)):
            # d(a,b) <= d(a,c) + d(c,b) for all b,c
            assert (d[a][None, :] <= d[a][:, None] + d).all()
