"""Randomized equivalence: the vectorized closure must be bit-identical to
the reference engine on arbitrary (seed, generator) inputs.

``build_ip_graph_fast``'s docstring promises identical node numbering and
arc lists; ``tests/test_fastclosure.py`` pins a handful of fixed cases.
Here we fuzz ~50 seeded-random instances — mixed generator kinds
(nucleus/super/generic), repeated symbols, non-integer symbols, directed
closures — and compare every observable of the built graphs.
"""

import random

import pytest

from repro.core.fastclosure import build_ip_graph_fast
from repro.core.ipgraph import GENERIC, NUCLEUS, SUPER, Generator, build_ip_graph
from repro.core.permutation import Permutation

N_CASES = 50
KINDS = (NUCLEUS, SUPER, GENERIC)


def _random_case(rng: random.Random):
    """One random (seed, generators, directed) instance, kept small enough
    that the pure-python reference engine stays fast (k <= 7)."""
    k = rng.randint(3, 7)
    # repeated symbols with probability 2/3: alphabet smaller than k
    if rng.random() < 2 / 3:
        alphabet_size = rng.randint(1, max(1, k - 1))
    else:
        alphabet_size = k
    symbol_pool = list(range(alphabet_size))
    if rng.random() < 0.25:
        # non-integer hashables exercise the symbol-encoding path
        symbol_pool = [chr(ord("a") + s) for s in symbol_pool]
    # every alphabet symbol appears at least once; the rest are random
    seed = list(symbol_pool)
    seed += [rng.choice(symbol_pool) for _ in range(k - len(seed))]
    rng.shuffle(seed)

    ngen = rng.randint(1, 4)
    gens = []
    for i in range(ngen):
        img = list(range(k))
        rng.shuffle(img)
        gens.append(Generator(Permutation(img), name=f"g{i}", kind=rng.choice(KINDS)))
    directed = rng.random() < 0.25
    return tuple(seed), gens, directed


def _case_params():
    rng = random.Random(0x1999_1CC9)
    cases = [_random_case(rng) for _ in range(N_CASES)]
    # make sure the suite actually covers the interesting regimes
    assert any(len(set(seed)) < len(seed) for seed, _, _ in cases)
    assert any(len(set(seed)) == len(seed) for seed, _, _ in cases)
    assert any(d for _, _, d in cases)
    assert any(isinstance(seed[0], str) for seed, _, _ in cases)
    kinds = {g.kind for _, gens, _ in cases for g in gens}
    assert kinds == set(KINDS)
    return cases


@pytest.mark.parametrize("seed,gens,directed", _case_params())
def test_fast_closure_matches_reference(seed, gens, directed):
    ref = build_ip_graph(seed, gens, directed=directed)
    fast = build_ip_graph_fast(seed, gens, directed=directed)
    assert ref.labels == fast.labels  # identical node order
    assert (ref.edges_src == fast.edges_src).all()
    assert (ref.edges_dst == fast.edges_dst).all()
    assert (ref.edges_gen == fast.edges_gen).all()
    assert ref.seed == fast.seed
    assert ref.directed == fast.directed
    assert ref.num_nodes == fast.num_nodes
    assert ref.num_edges() == fast.num_edges()
    # the derived adjacency agrees too (loops excluded identically)
    a, b = ref.adjacency_csr(), fast.adjacency_csr()
    assert (a.indptr == b.indptr).all()
    assert (a.indices == b.indices).all()


def test_equivalence_holds_under_profiling(tmp_path):
    """Instrumentation must not perturb either engine's output."""
    from repro import obs

    rng = random.Random(7)
    seed, gens, directed = _random_case(rng)
    ref = build_ip_graph(seed, gens, directed=directed)
    obs.enable(trace=str(tmp_path / "t.jsonl"))
    try:
        ref_p = build_ip_graph(seed, gens, directed=directed)
        fast_p = build_ip_graph_fast(seed, gens, directed=directed)
    finally:
        obs.disable()
        obs.reset()
    assert ref.labels == ref_p.labels == fast_p.labels
    assert (ref.edges_src == ref_p.edges_src).all()
    assert (ref.edges_src == fast_p.edges_src).all()
    assert (ref.edges_dst == fast_p.edges_dst).all()
    assert (ref.edges_gen == fast_p.edges_gen).all()
