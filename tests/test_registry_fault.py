"""Tests for the network registry and fault-tolerance metrics."""

import numpy as np
import pytest

from repro import networks as nw
from repro.metrics import (
    edge_connectivity,
    is_maximally_fault_tolerant,
    node_connectivity,
    random_fault_experiment,
)
from repro.networks import REGISTRY, available, build


class TestRegistry:
    def test_available_sorted(self):
        names = available()
        assert names == sorted(names)
        assert len(names) >= 30

    @pytest.mark.parametrize(
        "name,params,expected_n",
        [
            ("ring", {"n": 8}, 8),
            ("hypercube", {"n": 4}, 16),
            ("hsn", {"l": 2, "n": 2}, 16),
            ("ring_cn", {"l": 3, "n": 1}, 8),
            ("complete_cn", {"l": 2, "n": 2}, 16),
            ("super_flip", {"l": 2, "n": 2}, 16),
            ("hcn", {"n": 2}, 16),
            ("star", {"n": 4}, 24),
            ("ccc", {"n": 3}, 24),
            ("qcn", {"l": 2, "n": 4, "merge_bits": 2}, 64),
            ("cyclic_petersen", {"l": 2}, 100),
            ("debruijn", {"d": 2, "n": 3}, 8),
        ],
    )
    def test_build(self, name, params, expected_n):
        g = build(name, **params)
        assert g.num_nodes == expected_n

    def test_symmetric_flag(self):
        g = build("hsn", l=2, n=2, symmetric=True)
        assert g.num_nodes == 32

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            build("not-a-network")

    def test_every_registered_name_is_callable(self):
        for name, factory in REGISTRY.items():
            assert callable(factory), name


class TestConnectivity:
    def test_hypercube_maximally_fault_tolerant(self):
        q = nw.hypercube(4)
        assert node_connectivity(q) == 4
        assert edge_connectivity(q) == 4
        assert is_maximally_fault_tolerant(q)

    def test_star_graph(self):
        s = nw.star_graph(4)
        assert node_connectivity(s) == 3  # n - 1
        assert is_maximally_fault_tolerant(s)

    def test_symmetric_hsn_maximally_fault_tolerant(self):
        g = nw.symmetric_hsn(2, nw.hypercube_nucleus(2))
        assert is_maximally_fault_tolerant(g)

    def test_plain_hsn_connectivity_limited_by_min_degree(self):
        g = nw.hsn_hypercube(2, 2)
        k = node_connectivity(g)
        assert k <= g.min_degree
        assert k >= 1

    def test_ring(self):
        assert node_connectivity(nw.ring(8)) == 2

    def test_petersen(self):
        assert node_connectivity(nw.petersen()) == 3

    def test_size_guard(self):
        with pytest.raises(ValueError):
            node_connectivity(nw.hypercube(4), limit=5)


class TestFaultExperiment:
    def test_no_faults_like_connected(self):
        rng = np.random.default_rng(0)
        rep = random_fault_experiment(nw.hypercube(4), faults=1, trials=5, rng=rng)
        # Q4 is 4-connected: one fault can never disconnect it
        assert rep.connected_fraction == 1.0
        assert rep.mean_largest_component == 15

    def test_ring_fragile(self):
        rng = np.random.default_rng(1)
        rep = random_fault_experiment(nw.ring(12), faults=2, trials=20, rng=rng)
        # two faults almost surely split a ring (unless adjacent)
        assert rep.connected_fraction < 1.0

    def test_diameter_degrades_gracefully(self):
        rng = np.random.default_rng(2)
        rep = random_fault_experiment(nw.hypercube(4), faults=2, trials=10, rng=rng)
        assert rep.mean_surviving_diameter >= 4  # can only grow
        assert rep.mean_surviving_diameter <= 8

    def test_too_many_faults(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            random_fault_experiment(nw.ring(5), faults=5, trials=1, rng=rng)

    def test_repr(self):
        rng = np.random.default_rng(4)
        rep = random_fault_experiment(nw.ring(8), faults=1, trials=3, rng=rng)
        assert "FaultReport" in repr(rep)

    def test_symmetric_superip_beats_ring_under_faults(self):
        """Vertex-symmetric super-IP graphs degrade gracefully: same fault
        count, higher connected fraction than a ring of equal size."""
        g = nw.symmetric_hsn(2, nw.hypercube_nucleus(2))  # 32 nodes, 3-regular
        r = nw.ring(32)
        rng1, rng2 = np.random.default_rng(5), np.random.default_rng(5)
        rep_g = random_fault_experiment(g, faults=2, trials=25, rng=rng1)
        rep_r = random_fault_experiment(r, faults=2, trials=25, rng=rng2)
        assert rep_g.connected_fraction > rep_r.connected_fraction
