"""Tests for collective schedules and hypercube emulation on HSNs."""

import math

import numpy as np
import pytest

from repro import metrics as mt
from repro import networks as nw
from repro.algorithms import (
    HypercubeEmulator,
    Schedule,
    all_to_all_personalized_lower_bound,
    ascend_sum,
    broadcast_schedule,
    reduce_schedule,
    schedule_traffic_split,
)


class TestBroadcast:
    @pytest.mark.parametrize("builder,args", [
        (nw.hypercube, (4,)),
        (nw.ring, (9,)),
        (nw.star_graph, (4,)),
        (nw.hsn_hypercube, (2, 2)),
        (nw.cube_connected_cycles, (3,)),
    ])
    def test_valid_and_complete(self, builder, args):
        g = builder(*args)
        sched = broadcast_schedule(g, root=0)
        sched.validate(g)
        # everyone informed exactly once: N-1 messages total
        assert sched.total_messages() == g.num_nodes - 1

    def test_hypercube_broadcast_is_log_steps(self):
        q = nw.hypercube(4)
        sched = broadcast_schedule(q)
        assert sched.num_steps == 4  # binomial-tree optimal

    def test_steps_lower_bounded_by_log(self):
        for g in (nw.ring(16), nw.hsn_hypercube(2, 2), nw.star_graph(4)):
            sched = broadcast_schedule(g)
            assert sched.num_steps >= math.ceil(math.log2(g.num_nodes))

    def test_steps_upper_bound(self):
        """Single-port BFS-tree broadcast ≤ diameter + log2 N rounds."""
        for g in (nw.hypercube(4), nw.hsn_hypercube(2, 2), nw.ring(12)):
            sched = broadcast_schedule(g)
            bound = mt.diameter(g) + math.ceil(math.log2(g.num_nodes))
            assert sched.num_steps <= bound

    def test_disconnected_raises(self):
        from repro.core.network import Network

        net = Network.from_edge_list([(i,) for i in range(4)], [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            broadcast_schedule(net)

    def test_validate_catches_non_edges(self):
        g = nw.ring(5)
        bad = Schedule([[(0, 2)]])
        with pytest.raises(ValueError, match="not an edge"):
            bad.validate(g)

    def test_validate_catches_port_conflicts(self):
        g = nw.ring(5)
        bad = Schedule([[(0, 1), (0, 4)]])
        with pytest.raises(ValueError, match="port"):
            bad.validate(g)

    def test_reduce_is_reversed_broadcast(self):
        g = nw.hypercube(3)
        b = broadcast_schedule(g)
        r = reduce_schedule(g)
        assert r.num_steps == b.num_steps
        assert r.total_messages() == b.total_messages()
        r.validate(g)


class TestTrafficSplit:
    def test_hsn_broadcast_mostly_on_module(self):
        """'data movements ... largely confined within basic modules': the
        HSN broadcast crosses modules at most (#modules - 1) times."""
        g = nw.hsn_hypercube(2, 3)
        ma = mt.nucleus_modules(g)
        sched = broadcast_schedule(g)
        on, off = schedule_traffic_split(sched, ma)
        assert on + off == g.num_nodes - 1
        assert off <= ma.num_modules - 1 + 2  # tree crosses each module ~once
        assert on > off

    def test_hypercube_broadcast_crosses_more(self):
        q = nw.hypercube(6)
        ma = mt.subcube_modules(q, 3)
        _, off_q = schedule_traffic_split(broadcast_schedule(q), ma)
        h = nw.hsn_hypercube(2, 3)
        _, off_h = schedule_traffic_split(
            broadcast_schedule(h), mt.nucleus_modules(h)
        )
        assert off_h <= off_q


class TestAllToAllBound:
    def test_hypercube_bound(self):
        q = nw.hypercube(4)
        lb = all_to_all_personalized_lower_bound(q)
        # sum of distances = N * (n/2 * N/(N-1) * (N-1)) = N * n/2 * ... ;
        # exact: sum over pairs of hamming = N^2 * n / 2
        expected = (16 * 16 * 4 / 2) / q.adjacency_csr().nnz
        assert lb == pytest.approx(expected)

    def test_denser_network_lower_bound_smaller(self):
        a = all_to_all_personalized_lower_bound(nw.hypercube(4))
        b = all_to_all_personalized_lower_bound(nw.ring(16))
        assert a < b


class TestEmulation:
    @pytest.fixture(scope="class")
    def emu(self):
        return HypercubeEmulator(2, 2)

    def test_slowdown_profile(self, emu):
        prof = emu.slowdown_per_dimension
        assert len(prof) == 4
        assert prof[:2] == [1, 1]  # block-0 dimensions: native nucleus edges
        assert all(c <= 3 for c in prof)
        assert emu.max_slowdown == 3

    def test_ascend_sum(self, emu):
        rng = np.random.default_rng(0)
        vals = rng.random(emu.guest.num_nodes)
        total, steps = ascend_sum(emu, vals)
        assert total == pytest.approx(vals.sum())
        # constant-slowdown emulation: <= 3 * log2 N steps
        assert steps <= 3 * emu.dims
        assert steps >= emu.dims

    def test_exchange_shape_check(self, emu):
        with pytest.raises(ValueError):
            emu.exchange(np.zeros(3), 0)

    def test_exchange_is_involution(self, emu):
        rng = np.random.default_rng(1)
        vals = rng.random(emu.guest.num_nodes)
        other, _ = emu.exchange(vals, 2)
        back, _ = emu.exchange(other, 2)
        assert np.allclose(back, vals)

    def test_bigger_instance(self):
        emu = HypercubeEmulator(3, 1)
        vals = np.arange(emu.guest.num_nodes, dtype=float)
        total, steps = ascend_sum(emu, vals)
        assert total == vals.sum()
        assert steps <= 3 * emu.dims
