"""Tests for the fault-aware ResilientRouter and the NextHopTable upgrades."""

import numpy as np
import pytest

from repro import networks as nw
from repro.core.network import Network, RoutingError
from repro.fault import FaultPlan, ResilientRouter
from repro.metrics.distances import bfs_distances
from repro.routing.table import NextHopTable, shortest_path


class TestNextHopTableUpgrades:
    def test_disconnected_error_names_pair(self):
        net = Network.from_edge_list([(i,) for i in range(4)], [(0, 1), (2, 3)])
        with pytest.raises(RoutingError, match=r"node \d+ cannot reach node \d+"):
            NextHopTable(net)

    def test_isolated_node_error_names_node(self):
        net = Network.from_edge_list([(i,) for i in range(3)], [(0, 1)])
        with pytest.raises(RoutingError, match="node 2 is isolated"):
            NextHopTable(net)

    def test_allow_unreachable_marks_and_raises_on_query(self):
        net = Network.from_edge_list([(i,) for i in range(4)], [(0, 1), (2, 3)])
        table = NextHopTable(net, allow_unreachable=True, with_distances=True)
        assert table.next_hop(0, 1) == 1  # within-component routing works
        assert table.next_hop(2, 3) == 3
        assert table.table[3, 0] == -1
        with pytest.raises(RoutingError, match="node 0 to node 3"):
            table.next_hop(0, 3)
        with pytest.raises(RoutingError, match="different connected components"):
            table.distance(0, 3)
        assert table.next_hops(0, 3) == []

    def test_allow_unreachable_with_isolated_node(self):
        net = Network.from_edge_list([(i,) for i in range(3)], [(0, 1)])
        table = NextHopTable(net, allow_unreachable=True)
        assert table.next_hop(0, 1) == 1
        with pytest.raises(RoutingError):
            table.next_hop(2, 0)
        with pytest.raises(RoutingError):
            table.next_hop(0, 2)

    def test_next_hops_all_minimal(self):
        g = nw.hypercube(3)
        table = NextHopTable(g, with_distances=True)
        # 0 -> 7 is antipodal: every one of the 3 neighbors is minimal
        assert table.next_hops(0, 7) == [1, 2, 4]
        assert table.next_hops(0, 7)[0] == table.next_hop(0, 7)
        # adjacent pair: single minimal hop
        assert table.next_hops(0, 1) == [1]
        assert table.next_hops(5, 5) == [5]

    def test_distance_matches_bfs(self):
        g = nw.cube_connected_cycles(3)
        table = NextHopTable(g, with_distances=True)
        d = bfs_distances(g, np.arange(g.num_nodes))
        rng = np.random.default_rng(0)
        for _ in range(40):
            u, dst = rng.integers(0, g.num_nodes, 2)
            assert table.distance(int(u), int(dst)) == d[dst, u]

    def test_distance_requires_flag(self):
        table = NextHopTable(nw.ring(6))
        with pytest.raises(ValueError, match="with_distances"):
            table.distance(0, 3)
        with pytest.raises(ValueError, match="with_distances"):
            table.next_hops(0, 3)

    def test_shortest_path_disconnected_names_pair(self):
        net = Network([(0,), (1,)], [0], [0])  # self-loop only
        with pytest.raises(RoutingError, match="node 0 to node 1"):
            shortest_path(net, 0, 1)


class TestResilientRouter:
    def _router(self, g, plan, **kw):
        return ResilientRouter(g, plan.compile(g), **kw)

    def test_healthy_primary(self):
        g = nw.hypercube(3)
        r = self._router(g, FaultPlan())
        table = NextHopTable(g)
        nxt, verdict, rest = r.route_next(0, 7, 0)
        assert verdict == "primary"
        assert nxt == table.next_hop(0, 7)
        assert rest == ()
        assert r.reroutes == r.deroutes == r.unreachable == 0

    def test_alternate_minimal_hop(self):
        g = nw.hypercube(3)
        # 0 -> 7 has minimal hops {1, 2, 4}; kill the preferred one (1)
        r = self._router(g, FaultPlan().fail_link(0, 0, 1))
        nxt, verdict, _ = r.route_next(0, 7, 0)
        assert verdict == "reroute"
        assert nxt == 2
        assert r.reroutes == 1

    def test_dead_next_node_triggers_reroute(self):
        g = nw.hypercube(3)
        r = self._router(g, FaultPlan().fail_node(0, 1))
        nxt, verdict, _ = r.route_next(0, 7, 0)
        assert verdict == "reroute"
        assert nxt == 2

    def test_deroute_pins_survivor_path(self):
        g = nw.hypercube(3)
        # 0 -> 1: the only minimal hop is the direct link; kill it
        r = self._router(g, FaultPlan().fail_link(0, 0, 1))
        nxt, verdict, rest = r.route_next(0, 1, 0)
        assert verdict == "deroute"
        path = (0, nxt) + tuple(rest)
        assert path[-1] == 1
        assert len(path) >= 3  # genuine detour
        for a, b in zip(path, path[1:]):  # every detour hop is a live edge
            assert b in g.neighbors(a)
            assert r.timeline.link_up_at(a, b, 0)
        assert r.deroutes == 1

    def test_faults_respect_time(self):
        g = nw.hypercube(3)
        r = self._router(g, FaultPlan().fail_link(10, 0, 1).repair_link(20, 0, 1))
        assert r.route_next(0, 1, 5)[1] == "primary"
        assert r.route_next(0, 1, 10)[1] == "deroute"
        assert r.route_next(0, 1, 25)[1] == "primary"

    def test_dead_destination_unreachable(self):
        g = nw.hypercube(3)
        r = self._router(g, FaultPlan().fail_node(0, 7))
        nxt, verdict, _ = r.route_next(0, 7, 0)
        assert (nxt, verdict) == (-1, "unreachable")
        assert r.unreachable == 1

    def test_cut_destination_unreachable(self):
        r4 = nw.ring(4)
        plan = FaultPlan().fail_link(0, 0, 1).fail_link(0, 1, 2)  # isolate node 1
        r = self._router(r4, plan)
        # node 0 sits at the cut: direct link dead, no survivor path exists
        assert r.route_next(0, 1, 0)[1] == "unreachable"
        assert r.unreachable == 1

    def test_disjoint_fallback_can_be_disabled(self):
        g = nw.hypercube(3)
        r = self._router(g, FaultPlan().fail_link(0, 0, 1), use_disjoint=False)
        assert r.route_next(0, 1, 0)[1] == "unreachable"

    def test_table_without_distances_rejected(self):
        g = nw.ring(6)
        table = NextHopTable(g)
        with pytest.raises(ValueError, match="with_distances"):
            ResilientRouter(g, FaultPlan().compile(g), table=table)

    def test_survivor_path_cache_by_epoch(self):
        g = nw.hypercube(3)
        r = self._router(g, FaultPlan().fail_link(0, 0, 1))
        p1 = r._survivor_path(0, 1, 0)
        p2 = r._survivor_path(0, 1, 0)
        assert p1 is p2  # cached


class TestBoundedCaches:
    def _router(self, g, plan, **kw):
        return ResilientRouter(g, plan.compile(g), **kw)

    def test_cache_info_counts_hits_and_misses(self):
        g = nw.hypercube(3)
        r = self._router(g, FaultPlan().fail_link(0, 0, 1))
        r._survivor_path(0, 1, 0)
        r._survivor_path(0, 1, 0)
        info = r.cache_info()
        assert info["path_misses"] == 1
        assert info["path_hits"] == 1
        assert info["path_currsize"] == 1
        assert info["path_maxsize"] == 4096

    def test_lru_bound_enforced(self):
        g = nw.hypercube(3)
        r = self._router(
            g, FaultPlan().fail_link(0, 0, 1), path_cache_size=2
        )
        for dst in (1, 3, 5, 7):
            r._survivor_path(0, dst, 0)
        info = r.cache_info()
        assert info["path_currsize"] <= 2
        assert info["path_evictions"] >= 2

    def test_epoch_change_evicts_stale_entries(self):
        g = nw.hypercube(3)
        plan = FaultPlan().fail_link(0, 0, 1).fail_node(10, 7)
        r = self._router(g, plan)
        r._survivor_path(0, 1, 0)
        r._survivor_path(0, 1, 20)  # later epoch: earlier entry evicted
        info = r.cache_info()
        assert info["path_evictions"] >= 1
        assert info["view_currsize"] == 1

    def test_cache_clear_resets_entries(self):
        g = nw.hypercube(3)
        r = self._router(g, FaultPlan().fail_link(0, 0, 1))
        r._survivor_path(0, 1, 0)
        r.cache_clear()
        info = r.cache_info()
        assert info["path_currsize"] == 0
        assert info["view_currsize"] == 0

    def test_bad_cache_size_rejected(self):
        g = nw.ring(6)
        with pytest.raises(ValueError, match="path_cache_size"):
            self._router(g, FaultPlan(), path_cache_size=0)

    def test_orbit_cache_shared_across_symmetric_configs(self):
        from repro.fault import OrbitDetourCache

        g = nw.hypercube(3)
        oc = OrbitDetourCache(g)
        r1 = self._router(g, FaultPlan().fail_link(0, 0, 1), orbit_cache=oc)
        r1._survivor_path(0, 1, 0)
        # (0, 2) is automorphic to (0, 1): second router hits the shared cache
        r2 = self._router(g, FaultPlan().fail_link(0, 0, 2), orbit_cache=oc)
        path = r2._survivor_path(0, 2, 0)
        assert oc.cache_info()["hits"] >= 1
        assert path[0] == 0 and path[-1] == 2
        for x, y in zip(path, path[1:]):
            assert y in g.neighbors(x)
            assert {x, y} != {0, 2}  # never uses the dead link

    def test_orbit_cache_result_matches_direct_computation(self):
        from repro.fault import OrbitDetourCache

        g = nw.hypercube(3)
        plan = FaultPlan().fail_link(0, 0, 1)
        direct = self._router(g, plan)._survivor_path(0, 1, 0)
        cached = self._router(
            g, plan, orbit_cache=OrbitDetourCache(g)
        )._survivor_path(0, 1, 0)
        assert len(cached) == len(direct)
        assert cached[0] == direct[0] and cached[-1] == direct[-1]
