"""Tests for the explicit-nucleus super-graph constructor and report tools."""

import pytest

from repro import metrics as mt
from repro import networks as nw
from repro.analysis.report import format_value, render_table
from repro.core.superip import SuperGeneratorSet
from repro.networks.hier import explicit_super_graph


class TestExplicitSuperGraph:
    def test_petersen_hsn(self):
        g = explicit_super_graph(nw.petersen(), SuperGeneratorSet.transpositions(2))
        assert g.num_nodes == 100
        # degree: nucleus 3 + 1 swap
        assert g.max_degree == 4
        assert mt.diameter(g) == 2 * 2 + 1  # Theorem 4.1 with D_G = 2

    def test_petersen_ring_cn_l3(self):
        g = explicit_super_graph(nw.petersen(), SuperGeneratorSet.ring(3))
        assert g.num_nodes == 1000
        assert mt.diameter(g) == 3 * 2 + 2

    def test_symmetric_counts(self):
        g = explicit_super_graph(
            nw.petersen(), SuperGeneratorSet.ring(2), symmetric=True
        )
        # symmetric variant: |A| * M^l = 2 * 100
        assert g.num_nodes == 200

    def test_nucleus_modules_and_metrics(self):
        g = explicit_super_graph(nw.petersen(), SuperGeneratorSet.transpositions(3))
        ma = mt.nucleus_modules(g)
        assert ma.num_modules == 100
        assert ma.max_module_size == 10
        assert mt.intercluster_diameter(ma) == 2  # l - 1

    def test_quotient_formula_matches_explicit_nucleus(self):
        """The module-quotient I-metrics hold for ANY nucleus, including
        non-Cayley ones like Petersen."""
        from repro.analysis.formulas import superip_point

        g = explicit_super_graph(nw.petersen(), SuperGeneratorSet.transpositions(2))
        ma = mt.nucleus_modules(g)
        pt = superip_point(
            "HSN(l,P)", SuperGeneratorSet.transpositions(2), 10, 3, 2, "P"
        )
        assert pt.i_diameter == mt.intercluster_diameter(ma)
        assert pt.avg_i_distance == pytest.approx(
            mt.average_intercluster_distance(ma)
        )
        assert pt.i_degree == pytest.approx(mt.intercluster_degree(ma))

    def test_max_nodes_guard(self):
        with pytest.raises(ValueError, match="max_nodes"):
            explicit_super_graph(
                nw.petersen(), SuperGeneratorSet.ring(3), max_nodes=100
            )

    def test_disconnected_nucleus_fails_gracefully(self):
        """With a disconnected nucleus the closure only reaches part of the
        product — sizes reflect the reachable component."""
        from repro.core.network import Network

        two = Network.from_edge_list([(0,), (1,), (2,), (3,)], [(0, 1), (2, 3)])
        g = explicit_super_graph(two, SuperGeneratorSet.transpositions(2))
        # only states reachable from (0, 0): front block explores {0,1} and
        # swaps keep components; 2 values per block => 4 nodes
        assert g.num_nodes == 4


class TestReportRendering:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(3.14159) == "3.142"
        assert format_value(2.0) == "2"
        assert format_value(float("nan")) == "-"
        assert format_value(7) == "7"

    def test_render_empty(self):
        assert render_table([]) == "(empty)"

    def test_render_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 1000, "b": None}]
        out = render_table(rows)
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "-" in lines[3]  # None rendered as -

    def test_render_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        out = render_table(rows, columns=["b"])
        assert "a" not in out.splitlines()[0]
