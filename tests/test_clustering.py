"""Tests for module assignment and the Section-5 inter-cluster metrics."""

import numpy as np
import pytest

from repro import networks as nw
from repro.metrics.clustering import (
    ModuleAssignment,
    _zero_one_intermodule_distances,
    average_intercluster_distance,
    contiguous_modules,
    intercluster_degree,
    intercluster_diameter,
    intercluster_distances,
    intercluster_summary,
    modules_by_key,
    nucleus_modules,
    offmodule_links_per_node,
    split_modules,
    subcube_modules,
)


class TestAssignments:
    def test_nucleus_modules_hsn(self):
        g = nw.hsn_hypercube(2, 3)
        ma = nucleus_modules(g)
        assert ma.num_modules == 8  # M^(l-1)
        assert ma.max_module_size == 8  # M
        assert ma.modules_internally_connected()

    def test_nucleus_modules_count_general(self):
        g = nw.hsn_hypercube(3, 2)
        ma = nucleus_modules(g)
        assert ma.num_modules == 16
        assert set(ma.module_sizes) == {4}

    def test_nucleus_modules_requires_kinds(self):
        q = nw.hypercube_ip(3)  # all generators are NUCLEUS kind -> 1 module
        ma = nucleus_modules(q)
        assert ma.num_modules == 1

    def test_subcube_modules(self):
        q = nw.hypercube(5)
        ma = subcube_modules(q, 2)
        assert ma.num_modules == 8
        assert ma.max_module_size == 4
        assert ma.modules_internally_connected()

    def test_contiguous_modules(self):
        r = nw.ring(12)
        ma = contiguous_modules(r, 3)
        assert ma.num_modules == 4
        assert ma.modules_internally_connected()

    def test_contiguous_invalid(self):
        with pytest.raises(ValueError):
            contiguous_modules(nw.ring(6), 0)

    def test_modules_by_key(self):
        s = nw.star_graph(4)
        ma = modules_by_key(s, lambda lab: lab[2:])
        assert ma.num_modules == 12  # 4!/2!
        assert ma.max_module_size == 2

    def test_split_modules(self):
        g = nw.hsn_hypercube(2, 4)  # nucleus copies of 16
        ma = split_modules(nucleus_modules(g), 4)
        assert ma.max_module_size == 4
        assert ma.num_modules == 16 * 4

    def test_split_modules_keeps_small(self):
        g = nw.hsn_hypercube(2, 2)
        ma = split_modules(nucleus_modules(g), 16)
        assert ma.num_modules == nucleus_modules(g).num_modules

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ModuleAssignment(nw.ring(5), np.zeros(3, dtype=int))

    def test_members(self):
        ma = contiguous_modules(nw.ring(6), 2)
        assert list(ma.members(0)) == [0, 1]

    def test_repr(self):
        ma = contiguous_modules(nw.ring(6), 2)
        assert "modules=3" in repr(ma)


class TestOffModuleLinks:
    def test_hsn_offmodule_counts(self):
        """§5.3: HSN(l, G) has at most l−1 off-module links per node."""
        for l in (2, 3, 4):
            g = nw.hsn_hypercube(l, 2)
            off = offmodule_links_per_node(nucleus_modules(g))
            assert off.max() == l - 1

    def test_ring_cn_offmodule_counts(self):
        """§5.3: ring-CN has 1 (l=2) or 2 (l≥3) off-module links per node."""
        for l, expect in ((2, 1), (3, 2), (4, 2)):
            g = nw.ring_cn_hypercube(l, 2)
            off = offmodule_links_per_node(nucleus_modules(g))
            assert off.max() == expect

    def test_hypercube_offmodule(self):
        q = nw.hypercube(7)
        off = offmodule_links_per_node(subcube_modules(q, 3))
        assert (off == 4).all()  # n - c

    def test_intercluster_degree_formula_hsn(self):
        g = nw.hsn_hypercube(2, 3)
        ideg = intercluster_degree(nucleus_modules(g))
        assert ideg == pytest.approx((2 - 1) * (1 - 1 / 8))


class TestInterclusterDistances:
    def test_hsn_quotient_is_gh(self):
        """HSN module quotient = generalized hypercube → I-diameter l−1."""
        for l in (2, 3):
            g = nw.hsn_hypercube(l, 2)
            ma = nucleus_modules(g)
            assert intercluster_diameter(ma) == l - 1

    def test_hcn_i_diameter_is_one(self):
        g = nw.hsn_hypercube(2, 3)
        assert intercluster_diameter(nucleus_modules(g)) == 1

    def test_quotient_equals_zero_one_bfs(self):
        """The quotient-graph shortcut must agree with the 0/1-weight BFS."""
        g = nw.hsn_hypercube(3, 2)
        ma = nucleus_modules(g)
        fast = intercluster_distances(ma)
        slow = _zero_one_intermodule_distances(ma)
        assert (fast == slow).all()

    def test_zero_one_fallback_on_disconnected_modules(self):
        # modules that are NOT internally connected: stripes of a ring
        r = nw.ring(8)
        ma = ModuleAssignment(r, np.arange(8) % 2)
        assert not ma.modules_internally_connected()
        d = intercluster_distances(ma)  # falls back automatically
        assert d[0, 1] == 1 and d[0, 0] == 0

    def test_average_i_distance_hcn(self):
        """For HCN (l=2): avg I-distance = P(different module) ≈ 1."""
        g = nw.hsn_hypercube(2, 3)
        ma = nucleus_modules(g)
        n, m = g.num_nodes, 8
        expected = (n - m) / (n - 1)  # pairs in different modules need 1 hop
        assert average_intercluster_distance(ma) == pytest.approx(expected)

    def test_average_i_distance_zero_when_single_module(self):
        q = nw.hypercube_ip(3)
        assert average_intercluster_distance(nucleus_modules(q)) == 0.0

    def test_summary(self):
        g = nw.hsn_hypercube(2, 2)
        s = intercluster_summary(nucleus_modules(g))
        assert s.i_diameter == 1
        assert s.i_degree == pytest.approx(0.75)
        assert s.num_modules == 4
        assert "i_degree" in repr(s)

    def test_subcube_vs_dense_modules_tradeoff(self):
        """Bigger modules strictly reduce the I-diameter of a hypercube."""
        q = nw.hypercube(6)
        d3 = intercluster_diameter(subcube_modules(q, 3))
        d4 = intercluster_diameter(subcube_modules(q, 4))
        assert d3 == 3 and d4 == 2

    def test_superip_beats_hypercube_ii(self):
        """The paper's headline: super-IP graphs dominate on II-cost."""
        h = nw.hsn_hypercube(3, 2)  # 64 nodes
        q = nw.hypercube(6)  # 64 nodes
        hs = intercluster_summary(nucleus_modules(h))
        qs = intercluster_summary(subcube_modules(q, 2))  # modules of 4, like h
        assert hs.i_degree * hs.i_diameter < qs.i_degree * qs.i_diameter
