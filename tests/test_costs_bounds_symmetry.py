"""Tests for cost figures of merit, Moore bounds, and symmetry checks."""

import pytest

from repro import networks as nw
from repro.metrics import (
    dd_cost,
    diameter_optimality_ratio,
    id_cost,
    ii_cost,
    is_vertex_transitive,
    looks_vertex_transitive,
    measure_costs,
    moore_bound_diameter,
    moore_bound_nodes,
    nucleus_modules,
    subcube_modules,
)


class TestCosts:
    def test_scalar_helpers(self):
        assert dd_cost(4, 5) == 20
        assert id_cost(1.5, 7) == 10.5
        assert ii_cost(2.0, 3) == 6.0

    def test_measure_costs_hsn(self):
        g = nw.hsn_hypercube(2, 2)
        c = measure_costs(g, nucleus_modules(g))
        assert c.num_nodes == 16
        assert c.degree == 3
        assert c.diameter == 5
        assert c.dd_cost == 15
        assert c.i_diameter == 1
        assert c.ii_cost == pytest.approx(0.75)
        row = c.row()
        assert row["network"] == g.name
        assert row["DD"] == 15.0

    def test_measure_costs_hypercube(self):
        q = nw.hypercube(4)
        c = measure_costs(q, subcube_modules(q, 2), assume_vertex_transitive=True)
        assert c.dd_cost == 16
        assert c.i_degree == 2.0
        assert c.i_diameter == 2

    def test_star_vs_hypercube_dd(self):
        """Fig. 2's key comparison at N ≈ 120: star beats hypercube."""
        from repro.metrics import diameter

        s = nw.star_graph(5)
        q = nw.hypercube(7)
        assert s.max_degree * diameter(s) < q.max_degree * diameter(q)


class TestMooreBounds:
    def test_nodes_small_degrees(self):
        assert moore_bound_nodes(2, 3) == 7  # cycle of 7
        assert moore_bound_nodes(1, 1) == 2
        assert moore_bound_nodes(0, 5) == 1
        assert moore_bound_nodes(5, 0) == 1

    def test_nodes_degree3(self):
        assert moore_bound_nodes(3, 1) == 4
        assert moore_bound_nodes(3, 2) == 10  # Petersen attains it

    def test_petersen_is_moore_graph(self):
        p = nw.petersen()
        from repro.metrics import diameter

        assert p.num_nodes == moore_bound_nodes(3, diameter(p))

    def test_diameter_bound_monotone(self):
        assert moore_bound_diameter(10, 3) == 2
        assert moore_bound_diameter(11, 3) == 3
        assert moore_bound_diameter(1, 5) == 0

    def test_diameter_bound_validation(self):
        with pytest.raises(ValueError):
            moore_bound_diameter(0, 3)
        with pytest.raises(ValueError):
            moore_bound_diameter(5, 1)
        with pytest.raises(ValueError):
            moore_bound_diameter(5, 0)

    def test_optimality_ratio(self):
        assert diameter_optimality_ratio(10, 3, 2) == 1.0
        assert diameter_optimality_ratio(10, 3, 4) == 2.0

    def test_hypercube_far_from_moore(self):
        # hypercube diameter n vs Moore bound ~ log_{n-1} 2^n
        r = diameter_optimality_ratio(2**10, 10, 10)
        assert r > 2.0

    def test_gh_based_superip_near_optimal(self):
        """Theorem 4.4's construction: GH nuclei give small ratios."""
        from repro.analysis.formulas import superip_point
        from repro.core.superip import SuperGeneratorSet

        pt = superip_point(
            "HSN", SuperGeneratorSet.transpositions(2), 64, 14, 2, "GH(8,8)",
            include_i=False,
        )
        assert diameter_optimality_ratio(pt.num_nodes, pt.degree, pt.diameter) <= 2.5


class TestSymmetry:
    def test_symmetric_hsn_vertex_transitive(self):
        g = nw.symmetric_hsn(2, nw.hypercube_nucleus(2))
        assert is_vertex_transitive(g)

    def test_symmetric_cn_vertex_transitive(self):
        g = nw.ring_cn(2, nw.hypercube_nucleus(2), symmetric=True)
        assert is_vertex_transitive(g)

    def test_plain_hsn_not_regular(self):
        g = nw.hsn_hypercube(2, 2)
        assert not g.is_regular()
        assert not looks_vertex_transitive(g)

    def test_plain_hsn_not_transitive_exact(self):
        g = nw.hsn_hypercube(2, 2)
        assert not is_vertex_transitive(g)

    def test_hypercube_transitive(self):
        assert is_vertex_transitive(nw.hypercube(3))

    def test_star_transitive(self):
        assert is_vertex_transitive(nw.star_graph(4))

    def test_path_not_transitive(self):
        assert not looks_vertex_transitive(nw.path(4))

    def test_regular_but_not_transitive_screen(self):
        """A regular graph with unequal distance profiles is caught by the
        screen without the expensive exact test."""
        from repro.core.network import Network

        # two triangles joined by a perfect matching minus ... use a kite-ish
        # regular graph: C6 with chords 0-3 only would be irregular; use the
        # 3-prism (regular, transitive) vs a 6-cycle with one chord pattern
        # that stays regular: the "theta graph" K4 minus perfect matching is
        # C4 (transitive).  Use instead the 3x2 grid wrapped = prism: it is
        # transitive.  For a genuinely non-transitive regular graph take the
        # disjointness-free example: C3 x K2 prism IS transitive, so instead
        # verify the screen passes on it and exact agrees.
        from repro import networks as nw2

        prism = Network.from_edge_list(
            [(i,) for i in range(6)],
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (1, 4), (2, 5)],
        )
        assert looks_vertex_transitive(prism)
        assert is_vertex_transitive(prism)

    def test_node_limit(self):
        with pytest.raises(ValueError):
            is_vertex_transitive(nw.hypercube(3), node_limit=4)

    def test_ipgraph_method(self):
        g = nw.symmetric_hsn(2, nw.hypercube_nucleus(1))
        assert g.is_vertex_transitive()
        with pytest.raises(ValueError):
            nw.hsn_hypercube(2, 4).is_vertex_transitive(max_nodes=10)
