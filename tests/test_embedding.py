"""Tests for embeddings and the paper's dilation-3 HSN claims."""

import numpy as np
import pytest

from repro import networks as nw
from repro.embed import Embedding, hypercube_into_hsn, product_into_hsn, torus_into_hsn


class TestEmbeddingMachinery:
    def test_identity_embedding(self):
        g = nw.ring(6)
        e = Embedding(g, g, np.arange(6))
        r = e.report()
        assert r.dilation == 1
        assert r.avg_dilation == 1.0
        assert r.expansion == 1.0
        assert r.congestion == 1

    def test_ring_into_hypercube_gray_code(self):
        """Classic: the ring embeds in the hypercube with dilation 1 via a
        Gray code."""
        n = 4
        q = nw.hypercube(n)
        r = nw.ring(1 << n)
        gray = [i ^ (i >> 1) for i in range(1 << n)]
        e = Embedding(r, q, gray)
        assert e.report().dilation == 1

    def test_ring_into_hypercube_binary_order_is_bad(self):
        """Mapping the ring in plain binary order has dilation n."""
        n = 4
        q = nw.hypercube(n)
        r = nw.ring(1 << n)
        e = Embedding(r, q, np.arange(1 << n))
        assert e.report().dilation == n

    def test_rejects_non_injective(self):
        g = nw.ring(4)
        with pytest.raises(ValueError, match="injective"):
            Embedding(g, g, [0, 0, 1, 2])

    def test_rejects_out_of_range(self):
        g = nw.ring(4)
        with pytest.raises(ValueError):
            Embedding(g, g, [0, 1, 2, 7])

    def test_rejects_wrong_length(self):
        g = nw.ring(4)
        with pytest.raises(ValueError):
            Embedding(g, g, [0, 1])

    def test_edge_router_endpoint_check(self):
        g = nw.ring(4)
        e = Embedding(g, g, np.arange(4), edge_router=lambda u, v: [u, u])
        with pytest.raises(ValueError, match="endpoints"):
            e.report()

    def test_dilation_of_edge(self):
        q2 = nw.hypercube(2)
        q3 = nw.hypercube(3)
        # embed Q2 into Q3 on the bottom face
        node_map = [q3.node_of(lab + (0,)) for lab in q2.labels]
        e = Embedding(q2, q3, node_map)
        assert all(e.dilation_of_edge(u, v) == 1 for u, v in e.guest_edges())


class TestHSNEmbeddings:
    @pytest.mark.parametrize("l,n", [(2, 2), (2, 3), (3, 2)])
    def test_hypercube_dilation_3(self, l, n):
        """'an HSN can embed corresponding homogeneous product networks such
        as hypercubes ... with dilation 3'."""
        e = hypercube_into_hsn(l, n)
        r = e.report()
        assert r.dilation == 3
        assert r.expansion == 1.0  # exact node identification

    def test_block0_edges_are_dilation_1(self):
        e = hypercube_into_hsn(2, 2)
        n = 2
        ones = 0
        for gu, gv in e.guest_edges():
            lu, lv = e.guest.labels[gu], e.guest.labels[gv]
            bit = next(i for i in range(2 * n) if lu[i] != lv[i])
            if bit < n:  # block-0 bits
                assert e.dilation_of_edge(gu, gv) == 1
                ones += 1
        assert ones > 0

    def test_constructive_paths_valid(self):
        """Every 3-hop path must consist of actual host edges."""
        from repro.routing import verify_route

        e = hypercube_into_hsn(2, 2)
        for gu, gv in e.guest_edges():
            path = e.host_path(gu, gv)
            assert verify_route(e.host, path)

    @pytest.mark.parametrize("l,k", [(2, 3), (2, 4), (3, 3)])
    def test_torus_dilation_3(self, l, k):
        e = torus_into_hsn(l, k)
        r = e.report()
        assert r.dilation <= 3
        assert r.expansion == 1.0

    def test_congestion_bounded(self):
        e = hypercube_into_hsn(2, 3)
        r = e.report()
        # each swap edge carries at most 2·n guest edges (n per direction)
        assert r.congestion <= 2 * 3

    def test_average_dilation_interpolates(self):
        e = hypercube_into_hsn(3, 2)
        r = e.report()
        # one third of the dimensions are block-0 (dilation 1); the rest use
        # the swap construction (3 hops, fewer when a swap is a self-loop)
        assert 1.0 < r.avg_dilation <= (1 * 2 + 3 * 4) / 6
