"""Average-distance formulas, the intro's star-vs-hypercube claim, and
smoke tests that keep the runnable examples healthy."""

import runpy
import sys
from pathlib import Path

import pytest

from repro import metrics as mt
from repro import networks as nw
from repro.analysis.formulas import (
    cyclic_petersen_point,
    hypercube_point,
    ring_point,
    torus_point,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestAvgDistanceFormulas:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_hypercube(self, n):
        pt = hypercube_point(n)
        assert pt.avg_distance == pytest.approx(
            mt.average_distance(nw.hypercube(n), assume_vertex_transitive=True)
        )

    @pytest.mark.parametrize("n", [6, 9, 12])
    def test_ring(self, n):
        pt = ring_point(n)
        assert pt.avg_distance == pytest.approx(mt.average_distance(nw.ring(n)))

    @pytest.mark.parametrize("k,dims", [(4, 2), (5, 2), (3, 3)])
    def test_torus(self, k, dims):
        pt = torus_point(k, dims)
        assert pt.avg_distance == pytest.approx(
            mt.average_distance(nw.torus([k] * dims))
        )


class TestIntroClaims:
    def test_star_beats_similar_hypercube_on_all_three(self):
        """'degree, diameter, and average distance smaller than those of a
        similar-size hypercube' (Section 1, on the star graph).

        The degree and diameter advantages hold from n = 5; the
        average-distance advantage is asymptotic and first appears around
        n = 6 (S6's 4.79 < Q10's 5.00), which is where we check it.
        """
        s5, q7 = nw.star_graph(5), nw.hypercube(7)
        assert s5.max_degree < q7.max_degree
        assert mt.diameter(s5) < mt.diameter(q7)
        s6, q10 = nw.star_graph(6), nw.hypercube(10)  # 720 vs 1024 nodes
        assert mt.average_distance(
            s6, assume_vertex_transitive=True
        ) < mt.average_distance(q10, assume_vertex_transitive=True)

    def test_petersen_cn_matches_built_network(self):
        """The CN(l,P) closed-form point vs the explicitly built cyclic
        Petersen network."""
        g = nw.cyclic_petersen_network(2)
        pt = cyclic_petersen_point(2)
        assert pt.num_nodes == g.num_nodes
        assert pt.degree == g.max_degree
        assert pt.diameter == mt.diameter(g)
        ma = mt.nucleus_modules(g)
        assert pt.i_degree == pytest.approx(mt.intercluster_degree(ma))
        assert pt.i_diameter == mt.intercluster_diameter(ma)

    def test_de_bruijn_densest_fixed_degree(self):
        """'de Bruijn graph, one of the densest known graphs': at degree 4
        it reaches 2^n nodes in diameter n — better than any torus and any
        CCC of equal size."""
        db = nw.debruijn(2, 8)  # 256 nodes, degree 4, diameter <= 8
        t = nw.torus([16, 16])  # 256 nodes, degree 4, diameter 16
        assert mt.diameter(db) <= 8 < mt.diameter(t)


class TestExamplesRun:
    """Each example must execute end to end (fast ones only)."""

    def _run(self, name: str, argv=()):
        path = EXAMPLES / name
        old_argv = sys.argv
        sys.argv = [str(path), *argv]
        try:
            runpy.run_path(str(path), run_name="__main__")
        finally:
            sys.argv = old_argv

    def test_quickstart(self, capsys):
        self._run("quickstart.py")
        out = capsys.readouterr().out
        assert "paper says 36" in out

    def test_ball_game_routing(self, capsys):
        self._run("ball_game_routing.py")
        out = capsys.readouterr().out
        assert "the bound is tight" in out

    def test_fault_tolerance(self, capsys):
        self._run("fault_tolerance.py")
        out = capsys.readouterr().out
        assert "connectivity" in out

    def test_design_space(self, capsys):
        self._run("design_space_exploration.py")
        out = capsys.readouterr().out
        assert "symmetric variants" in out

    def test_hierarchical_simulation(self, capsys):
        self._run("hierarchical_simulation.py")
        out = capsys.readouterr().out
        assert "sat. throughput" in out

    def test_wiring_and_wormhole(self, capsys):
        self._run("wiring_and_wormhole.py")
        out = capsys.readouterr().out
        assert "Cut-through" in out

    def test_verify_reproduction(self, capsys):
        with pytest.raises(SystemExit) as exc:
            self._run("verify_reproduction.py")
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "13/13 claims verified" in out
