"""Tests for recursive hierarchical networks (RHSN, HSE, HHN)."""

import pytest

from repro import metrics as mt
from repro import networks as nw
from repro.core.superip import (
    NucleusSpec,
    SuperGeneratorSet,
    build_super_ip_graph,
    diameter_formula,
)
from repro.networks.recursive import compose_nucleus, hhn_like, hse, rhsn


class TestComposeNucleus:
    def test_composed_size(self):
        inner = nw.hypercube_nucleus(1)  # M = 2
        comp = compose_nucleus(inner, SuperGeneratorSet.transpositions(2))
        assert comp.size() == 4  # M^l

    def test_composed_diameter_matches_theorem(self):
        inner = nw.hypercube_nucleus(1)
        sgs = SuperGeneratorSet.transpositions(2)
        comp = compose_nucleus(inner, sgs)
        assert comp.diameter() == diameter_formula(inner.diameter(), sgs)

    def test_composed_graph_isomorphic_to_direct_build(self):
        import networkx as nx

        inner = nw.hypercube_nucleus(1)
        sgs = SuperGeneratorSet.transpositions(2)
        comp = compose_nucleus(inner, sgs)
        a = comp.build()
        b = build_super_ip_graph(inner, sgs)
        assert nx.is_isomorphic(a.to_networkx(), b.to_networkx())

    def test_composition_is_reusable_as_nucleus(self):
        inner = nw.hypercube_nucleus(1)
        comp = compose_nucleus(inner, SuperGeneratorSet.ring(2))
        g = build_super_ip_graph(comp, SuperGeneratorSet.transpositions(2))
        assert g.num_nodes == (2**2) ** 2


class TestRHSN:
    def test_two_level_equals_hsn(self):
        import networkx as nx

        a = rhsn([2], nw.hypercube_nucleus(2))
        b = nw.hsn_hypercube(2, 2)
        assert nx.is_isomorphic(a.to_networkx(), b.to_networkx())

    def test_three_level_size(self):
        g = rhsn([2, 2], nw.hypercube_nucleus(1))
        assert g.num_nodes == 16  # ((2^1)^2)^2

    def test_three_level_diameter_corollary(self):
        """Corollary 4.2 applies level by level: the outer diameter is
        l·D_inner + (l−1), with D_inner itself following the formula."""
        base = nw.hypercube_nucleus(1)
        inner = compose_nucleus(base, SuperGeneratorSet.transpositions(2))
        d_inner = inner.diameter()
        assert d_inner == 2 * 1 + 1
        g = rhsn([2, 2], base)
        assert mt.diameter(g) == 2 * d_inner + 1

    def test_deeper_recursion(self):
        g = rhsn([2, 2, 2], nw.hypercube_nucleus(1))
        assert g.num_nodes == 256
        # diameter: level1 D=3, level2 D=7, level3 D=15 = 2*7+1
        assert mt.diameter(g) == 15

    def test_degree_grows_by_one_per_level(self):
        """Each transposition level adds exactly l−1 = 1 generator, so the
        RHSN stays low-degree — the family's selling point."""
        base = nw.hypercube_nucleus(1)
        g1 = rhsn([2], base)
        g2 = rhsn([2, 2], base)
        g3 = rhsn([2, 2, 2], base)
        assert g1.max_degree == 2
        assert g2.max_degree == 3
        assert g3.max_degree == 4

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError):
            rhsn([], nw.hypercube_nucleus(1))

    def test_nucleus_modules_at_outer_level(self):
        g = rhsn([2, 2], nw.hypercube_nucleus(1))
        ma = mt.nucleus_modules(g)
        assert ma.max_module_size == 4  # inner super-IP graph per module
        assert mt.intercluster_diameter(ma) == 1


class TestHSEAndHHN:
    def test_hse_size(self):
        g = hse(2, 2)
        assert g.num_nodes == 16  # (2^2)^2

    def test_hse_diameter_formula(self):
        nuc = nw.shuffle_exchange_nucleus(2)
        g = hse(2, 2)
        assert mt.diameter(g) == diameter_formula(
            nuc.diameter(), SuperGeneratorSet.ring(2)
        )

    def test_hse_low_degree(self):
        g = hse(2, 3)
        # SE degree <= 3, plus one shift super-generator
        assert g.max_degree <= 4

    def test_hhn_like_size(self):
        g = hhn_like(2, 1)
        assert g.num_nodes == ((2**1) ** 2) ** 2

    def test_hhn_like_diameter(self):
        g = hhn_like(2, 1)
        assert mt.diameter(g) == 2 * 3 + 1
