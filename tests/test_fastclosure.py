"""Tests for the vectorized IP-graph closure (must be bit-identical to the
reference engine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fastclosure import build_ip_graph_fast
from repro.core.ipgraph import build_ip_graph
from repro.core.permutation import (
    Permutation,
    cyclic_shift_left,
    from_cycles,
    transposition,
)
from repro.core.superip import SuperGeneratorSet, build_super_ip_graph
from repro.networks.nuclei import hypercube_nucleus, star_nucleus


def assert_identical(seed, gens, **kw):
    a = build_ip_graph(seed, gens, **kw)
    b = build_ip_graph_fast(seed, gens, **kw)
    assert a.labels == b.labels
    assert (a.edges_src == b.edges_src).all()
    assert (a.edges_dst == b.edges_dst).all()
    assert (a.edges_gen == b.edges_gen).all()
    return a, b


class TestIdentical:
    def test_star(self):
        assert_identical(tuple(range(5)), [transposition(5, 0, i) for i in range(1, 5)])

    def test_repeated_symbols(self):
        seed = (1, 2, 3, 1, 2, 3)
        gens = [
            from_cycles(6, [(1, 2)], one_based=True),
            from_cycles(6, [(1, 3)], one_based=True),
            cyclic_shift_left(6, 3),
        ]
        a, b = assert_identical(seed, gens)
        assert a.num_nodes == 36

    def test_non_integer_symbols(self):
        seed = ("a", "b", "a", "b")
        gens = [transposition(4, 0, 1), cyclic_shift_left(4, 2)]
        a, b = assert_identical(seed, gens)
        assert b.labels[0] == ("a", "b", "a", "b")

    def test_directed(self):
        a, b = assert_identical(
            (0, 1, 2), [cyclic_shift_left(3, 1)], directed=True
        )
        assert b.directed

    def test_hsn(self):
        nuc = hypercube_nucleus(2)
        sgs = SuperGeneratorSet.transpositions(3)
        a = build_super_ip_graph(nuc, sgs, engine="reference")
        b = build_super_ip_graph(nuc, sgs, engine="fast")
        assert a.labels == b.labels
        assert (a.edges_src == b.edges_src).all()

    def test_symmetric_hsn(self):
        nuc = hypercube_nucleus(2)
        sgs = SuperGeneratorSet.transpositions(2)
        a = build_super_ip_graph(nuc, sgs, symmetric=True, engine="reference")
        b = build_super_ip_graph(nuc, sgs, symmetric=True, engine="fast")
        assert a.labels == b.labels

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            build_super_ip_graph(
                hypercube_nucleus(1), SuperGeneratorSet.ring(2), engine="bogus"
            )

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(2, 5),
        st.lists(st.permutations(list(range(4))), min_size=1, max_size=3),
    )
    def test_random_generator_sets(self, reps, imgs):
        # build size-4 generator sets, inverse-closed, on a repeated seed
        perms = {Permutation(img) for img in imgs}
        perms |= {p.inverse() for p in perms}
        perms.discard(Permutation(range(4)))
        if not perms:
            perms = {transposition(4, 0, 1)}
        gens = sorted(perms, key=lambda p: p.img)
        seed = tuple(i % reps for i in range(4))
        assert_identical(seed, gens)


class TestGuards:
    def test_max_nodes(self):
        with pytest.raises(ValueError, match="max_nodes"):
            build_ip_graph_fast(
                tuple(range(7)),
                [transposition(7, 0, i) for i in range(1, 7)],
                max_nodes=100,
            )

    def test_no_generators(self):
        with pytest.raises(ValueError):
            build_ip_graph_fast((0, 1), [])

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            build_ip_graph_fast((0, 1, 2), [transposition(2, 0, 1)])
        with pytest.raises(ValueError):
            build_ip_graph_fast(
                (0, 1), [transposition(2, 0, 1), transposition(3, 0, 1)]
            )
