"""Tests for the distance kernels (validated against networkx)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import networks as nw
from repro.core.network import Network
from repro.metrics.distances import (
    average_distance,
    bfs_distances,
    diameter,
    distance_histogram,
    distance_summary,
    eccentricities,
    is_connected,
    single_source_distances,
)


def random_connected_network(n: int, extra_edges: int, seed: int) -> Network:
    """Random connected graph: a spanning tree plus random extra edges."""
    rng = np.random.default_rng(seed)
    edges = [(int(rng.integers(0, i)), i) for i in range(1, n)]
    for _ in range(extra_edges):
        a, b = rng.integers(0, n, 2)
        if a != b:
            edges.append((int(a), int(b)))
    return Network.from_edge_list([(i,) for i in range(n)], edges)


class TestAgainstNetworkx:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 40), st.integers(0, 60), st.integers(0, 10_000))
    def test_bfs_matches_networkx(self, n, extra, seed):
        net = random_connected_network(n, extra, seed)
        g = net.to_networkx()
        src = seed % n
        ours = single_source_distances(net, src)
        theirs = nx.single_source_shortest_path_length(g, src)
        for v in range(n):
            assert ours[v] == theirs[v]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(3, 25), st.integers(0, 40), st.integers(0, 10_000))
    def test_diameter_matches_networkx(self, n, extra, seed):
        net = random_connected_network(n, extra, seed)
        assert diameter(net) == nx.diameter(net.to_networkx())

    @settings(max_examples=10, deadline=None)
    @given(st.integers(3, 20), st.integers(0, 30), st.integers(0, 10_000))
    def test_average_matches_networkx(self, n, extra, seed):
        net = random_connected_network(n, extra, seed)
        assert average_distance(net) == pytest.approx(
            nx.average_shortest_path_length(net.to_networkx())
        )


class TestKnownValues:
    def test_hypercube_distances_are_hamming(self):
        q = nw.hypercube(4)
        d = single_source_distances(q, 0)
        for i, lab in enumerate(q.labels):
            assert d[i] == sum(lab)

    def test_multi_source(self):
        q = nw.hypercube(3)
        d = bfs_distances(q, [0, 7])
        assert d.shape == (2, 8)
        assert d[0, 7] == 3 and d[1, 0] == 3
        assert d[0, 0] == 0 and d[1, 7] == 0

    def test_eccentricities_ring(self):
        e = eccentricities(nw.ring(6))
        assert (e == 3).all()

    def test_vertex_transitive_shortcut(self):
        g = nw.star_graph(4)
        assert diameter(g) == diameter(g, assume_vertex_transitive=True)
        assert average_distance(g) == pytest.approx(
            average_distance(g, assume_vertex_transitive=True)
        )

    def test_distance_histogram(self):
        h = distance_histogram(nw.hypercube(3), 0)
        assert h == {0: 1, 1: 3, 2: 3, 3: 1}

    def test_distance_summary(self):
        s = distance_summary(nw.ring(8))
        assert s.diameter == 4 and s.radius == 4
        assert s.num_nodes == 8
        assert "D=4" in repr(s)

    def test_distance_summary_transitive(self):
        a = distance_summary(nw.hypercube(3))
        b = distance_summary(nw.hypercube(3), assume_vertex_transitive=True)
        assert a.diameter == b.diameter
        assert a.average == pytest.approx(b.average)


class TestDisconnected:
    def two_triangles(self):
        return Network.from_edge_list(
            [(i,) for i in range(6)],
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
        )

    def test_is_connected(self):
        assert is_connected(nw.ring(5))
        assert not is_connected(self.two_triangles())

    def test_unreached_is_minus_one(self):
        d = single_source_distances(self.two_triangles(), 0)
        assert d[3] == -1 and d[0] == 0

    def test_eccentricity_raises(self):
        with pytest.raises(ValueError, match="disconnected"):
            eccentricities(self.two_triangles())

    def test_average_raises(self):
        with pytest.raises(ValueError, match="disconnected"):
            average_distance(self.two_triangles())


class TestDirectedDistances:
    def test_directed_cycle(self):
        net = Network([(i,) for i in range(4)], [0, 1, 2, 3], [1, 2, 3, 0], directed=True)
        d = single_source_distances(net, 0)
        assert list(d) == [0, 1, 2, 3]

    def test_directed_debruijn_diameter(self):
        g = nw.debruijn(2, 3, directed=True)
        assert int(eccentricities(g).max()) == 3
