"""Contract-sweep tests (repro.check.invariants).

The sweep must cover 100% of the registry, pass on the real builders,
and — via mutation tests — demonstrably *fail* on corrupted networks, so
a regression in any family construction is caught by CI.
"""

import pytest

from repro.check import FAMILY_SPECS, Report, check_family, check_network, run_contracts
from repro.check.__main__ import main as check_main
from repro.core.network import Network
from repro.networks import available, build


class TestCoverage:
    def test_specs_cover_every_registry_family(self):
        assert set(FAMILY_SPECS) == set(available())

    def test_unknown_family_fails_with_ctr008(self):
        r = check_family("not-a-family")
        assert [f.code for f in r.findings] == ["CTR008"]

    def test_stale_spec_detected(self, monkeypatch):
        import repro.check.invariants as inv

        monkeypatch.setitem(inv.FAMILY_SPECS, "ghost_family", inv.FamilySpec({}))
        r = run_contracts()
        assert any(f.code == "CTR008" and f.path == "ghost_family" for f in r.findings)


@pytest.mark.parametrize("name", sorted(FAMILY_SPECS))
def test_family_contracts_pass(name):
    r = check_family(name)
    assert r.ok, r.render()
    assert r.checked >= 4


class TestSweep:
    def test_full_sweep_clean(self):
        r = run_contracts()
        assert r.ok, r.render()
        # every family contributes several assertions
        assert r.checked >= 4 * len(FAMILY_SPECS)

    def test_subset_sweep(self):
        r = run_contracts(["hsn", "ring_cn"])
        assert r.ok and r.checked > 0

    def test_cli_exit_zero(self, capsys):
        assert check_main(["contracts", "--family", "hypercube"]) == 0
        assert "clean" in capsys.readouterr().out


class TestMutations:
    """Deliberately corrupted networks must fail the contracts."""

    def test_wrong_node_count_fires_ctr001(self):
        g = build("hypercube", n=3)
        r = Report()
        check_network(g, "mutant", r, expected_nodes=16)
        assert "CTR001" in {f.code for f in r.findings}

    def test_removed_edge_breaks_diameter_and_regularity(self):
        ring = build("ring", n=5)
        keep = ~((ring.edges_src == 0) & (ring.edges_dst == 1))
        keep &= ~((ring.edges_src == 1) & (ring.edges_dst == 0))
        mutant = Network(
            ring.labels, ring.edges_src[keep], ring.edges_dst[keep], name="broken-ring"
        )
        r = Report()
        check_network(mutant, "mutant", r, expected_diameter=2, regular=True)
        codes = {f.code for f in r.findings}
        assert "CTR006" in codes and "CTR002" in codes

    def test_disconnected_fires_ctr007(self):
        g = Network([(0,), (1,), (2,)], [0], [1], name="islands")
        r = Report()
        check_network(g, "mutant", r)
        assert "CTR007" in {f.code for f in r.findings}

    def test_label_swap_fires_ctr005(self):
        g = build("hypercube", n=2)
        # swap two labels without updating the index: round-trips break
        g.labels[0], g.labels[1] = g.labels[1], g.labels[0]
        r = Report()
        check_network(g, "mutant", r)
        assert "CTR005" in {f.code for f in r.findings}

    def test_corrupted_vertex_set_fires_ctr003(self):
        g = build("star_ip", n=3)
        victim = g.labels[2]
        del g.index[victim]
        g.labels[2] = ("corrupt",)
        g.index[("corrupt",)] = 2
        r = Report()
        check_network(g, "mutant", r)
        assert "CTR003" in {f.code for f in r.findings}

    def test_mutation_report_renders_instance(self):
        r = check_family("not-a-family")
        assert r.render().startswith("not-a-family: CTR008")


class TestObsIntegration:
    def test_counters_recorded_when_enabled(self):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            run_contracts(["hypercube"])
            rep = obs.report()
            counters = rep["counters"]
            assert counters["check.contracts.families"] == 1
            assert counters["check.contracts.checks"] >= 4
            assert counters["check.contracts.failures"] == 0
        finally:
            obs.disable()
            obs.reset()
