"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import _parse_params, main


class TestParseParams:
    def test_ints(self):
        assert _parse_params(["l=2", "n=3"]) == {"l": 2, "n": 3}

    def test_bools(self):
        assert _parse_params(["symmetric=true"]) == {"symmetric": True}
        assert _parse_params(["symmetric=False"]) == {"symmetric": False}

    def test_strings(self):
        assert _parse_params(["name=abc"]) == {"name": "abc"}

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hsn" in out and "hypercube" in out

    def test_info_hsn(self, capsys):
        assert main(["info", "hsn", "--param", "l=2", "--param", "n=2"]) == 0
        out = capsys.readouterr().out
        assert "HSN(2,Q2)" in out
        assert "16" in out

    def test_info_without_modules(self, capsys):
        assert main(["info", "ring", "--param", "n=8", "--modules", "none"]) == 0
        out = capsys.readouterr().out
        assert "ring(8)" in out

    def test_info_skips_metrics_when_large(self, capsys):
        assert main(
            ["info", "hypercube", "--param", "n=4", "--max-metric-nodes", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "diameter" not in out

    def test_figure_53(self, capsys):
        assert main(["figure", "53"]) == 0
        out = capsys.readouterr().out
        assert "ring-CN" in out

    def test_figure_2(self, capsys):
        assert main(["figure", "2", "--max-log2", "12"]) == 0
        out = capsys.readouterr().out
        assert "DD-cost" in out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "9"])

    def test_unknown_network(self):
        with pytest.raises(KeyError):
            main(["info", "not-a-net"])


class TestFaultsCommand:
    """`python -m repro faults` — Monte-Carlo resilience sweeps."""

    def test_single_network_sweep(self, capsys):
        args = ["faults", "--network", "hypercube", "--param", "n=3",
                "--faults", "0,1", "--trials", "2", "--cycles", "15",
                "--rate", "0.2"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "delivery_ratio" in out
        assert "Q3" in out

    def test_node_faults(self, capsys):
        args = ["faults", "--network", "ring", "--param", "n=8",
                "--faults", "1", "--kind", "node", "--trials", "2",
                "--cycles", "10", "--rate", "0.2"]
        assert main(args) == 0
        assert "node" in capsys.readouterr().out

    def test_bad_fault_counts_rejected(self):
        with pytest.raises(SystemExit, match="comma-separated ints"):
            main(["faults", "--network", "ring", "--param", "n=8",
                  "--faults", "two"])

    def test_faults_profile_prints_fault_counters(self, capsys):
        args = ["faults", "--network", "ring", "--param", "n=16",
                "--faults", "2", "--trials", "2", "--cycles", "20",
                "--rate", "0.2", "--profile"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "-- timers --" in out
        assert "sim.faults.drops" in out or "sim.faults.reroutes" in out


class TestProfileFlags:
    """--profile / --trace on info, figure and summary (see repro.obs)."""

    def test_info_profile_prints_timing_table(self, capsys):
        assert main(["info", "hsn", "--profile", "--param", "l=2", "--param", "n=2"]) == 0
        out = capsys.readouterr().out
        assert "HSN(2,Q2)" in out  # the command's own output is intact
        assert "-- timers --" in out
        assert "closure.build.fast" in out
        assert "closure.fast.nodes" in out

    def test_info_trace_writes_valid_jsonl(self, capsys, tmp_path):
        import json

        trace = tmp_path / "out.jsonl"
        assert (
            main(
                ["info", "hsn", "--trace", str(trace),
                 "--param", "l=2", "--param", "n=2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert str(trace) in out
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert events, "trace file must not be empty"
        assert all(e["type"] in ("span", "instant") for e in events)
        assert any(e["name"] == "closure.build.fast" for e in events)
        spans = [e for e in events if e["type"] == "span"]
        assert all({"t0", "t1", "dur", "depth", "parent", "attrs"} <= e.keys()
                   for e in spans)

    def test_profile_and_trace_together(self, capsys, tmp_path):
        trace = tmp_path / "both.jsonl"
        args = ["info", "hsn", "--profile", "--trace", str(trace),
                "--param", "l=2", "--param", "n=2"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "-- timers --" in out
        assert trace.exists()

    def test_profile_off_by_default(self, capsys):
        from repro import obs

        obs.reset()
        assert main(["info", "star", "--param", "n=4"]) == 0
        out = capsys.readouterr().out
        assert "-- timers --" not in out
        assert not obs.enabled()
        assert obs.report()["counters"] == {}

    def test_summary_profile(self, capsys):
        assert main(["summary", "--size", "16", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "-- timers --" in out

    def test_figure_profile(self, capsys):
        assert main(["figure", "53", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "-- timers --" in out
