"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import _parse_params, main


class TestParseParams:
    def test_ints(self):
        assert _parse_params(["l=2", "n=3"]) == {"l": 2, "n": 3}

    def test_bools(self):
        assert _parse_params(["symmetric=true"]) == {"symmetric": True}
        assert _parse_params(["symmetric=False"]) == {"symmetric": False}

    def test_strings(self):
        assert _parse_params(["name=abc"]) == {"name": "abc"}

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hsn" in out and "hypercube" in out

    def test_info_hsn(self, capsys):
        assert main(["info", "hsn", "--param", "l=2", "--param", "n=2"]) == 0
        out = capsys.readouterr().out
        assert "HSN(2,Q2)" in out
        assert "16" in out

    def test_info_without_modules(self, capsys):
        assert main(["info", "ring", "--param", "n=8", "--modules", "none"]) == 0
        out = capsys.readouterr().out
        assert "ring(8)" in out

    def test_info_skips_metrics_when_large(self, capsys):
        assert main(
            ["info", "hypercube", "--param", "n=4", "--max-metric-nodes", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "diameter" not in out

    def test_figure_53(self, capsys):
        assert main(["figure", "53"]) == 0
        out = capsys.readouterr().out
        assert "ring-CN" in out

    def test_figure_2(self, capsys):
        assert main(["figure", "2", "--max-log2", "12"]) == 0
        out = capsys.readouterr().out
        assert "DD-cost" in out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "9"])

    def test_unknown_network(self):
        with pytest.raises(KeyError):
            main(["info", "not-a-net"])
