"""Tests for the explicit-nucleus router, load sweeps, de Bruijn nucleus,
and the paper's §5.3 worked numeric examples."""

import numpy as np
import pytest

from repro import metrics as mt
from repro import networks as nw
from repro.core.superip import SuperGeneratorSet
from repro.networks.hier import explicit_super_graph
from repro.routing import ExplicitSuperIPRouter, verify_route
from repro.sim import (
    offered_load_sweep,
    on_off_module_delay,
    saturation_rate,
    uniform_delay,
    unit_offmodule_capacity,
)


class TestExplicitRouter:
    @pytest.mark.parametrize("sgs_factory,l", [
        (SuperGeneratorSet.transpositions, 2),
        (SuperGeneratorSet.ring, 3),
        (SuperGeneratorSet.flips, 3),
    ])
    def test_petersen_routes_valid_and_bounded(self, sgs_factory, l):
        sgs = sgs_factory(l)
        nuc = nw.petersen()
        g = explicit_super_graph(nuc, sgs)
        r = ExplicitSuperIPRouter(nuc, sgs)
        bound = r.max_route_length()
        rng = np.random.default_rng(0)
        for _ in range(40):
            s, d = rng.integers(0, g.num_nodes, 2)
            path = r.route_nodes(g, int(s), int(d))
            assert path[0] == s and path[-1] == d
            assert verify_route(g, path)
            assert len(path) - 1 <= bound

    def test_bound_is_diameter(self):
        """For cyclic Petersen networks the sorting router's bound equals
        the exact BFS diameter (Theorem 4.1 is tight here too)."""
        sgs = SuperGeneratorSet.transpositions(2)
        nuc = nw.petersen()
        g = explicit_super_graph(nuc, sgs)
        r = ExplicitSuperIPRouter(nuc, sgs)
        assert r.max_route_length() == mt.diameter(g) == 5

    def test_trivial(self):
        sgs = SuperGeneratorSet.ring(2)
        nuc = nw.petersen()
        g = explicit_super_graph(nuc, sgs)
        r = ExplicitSuperIPRouter(nuc, sgs)
        assert r.route_nodes(g, 5, 5) == [5]

    def test_works_with_any_explicit_nucleus(self):
        nuc = nw.cube_connected_cycles(3)
        sgs = SuperGeneratorSet.transpositions(2)
        g = explicit_super_graph(nuc, sgs)
        r = ExplicitSuperIPRouter(nuc, sgs)
        path = r.route_nodes(g, 0, g.num_nodes - 1)
        assert verify_route(g, path)
        assert len(path) - 1 <= r.max_route_length()


class TestLoadSweeps:
    def test_latency_monotone_in_rate(self):
        q = nw.hypercube(5)
        rows = offered_load_sweep(q, uniform_delay(q), [0.01, 0.2, 0.5], cycles=100)
        lats = [r["mean_latency"] for r in rows]
        assert lats[0] <= lats[-1]
        assert all(r["delivered"] > 0 for r in rows)

    def test_sweep_throughput_orders_networks(self):
        """Under fixed per-node off-module capacity, the network with the
        smaller average I-distance sustains higher delivered throughput at
        every saturating rate (§5.2's throughput claim, via the sweep)."""
        rates = [0.2, 0.4]
        q = nw.hypercube(6)
        ma_q = mt.subcube_modules(q, 3)
        h = nw.hsn_hypercube(2, 3)
        ma_h = mt.nucleus_modules(h)
        rows_q = offered_load_sweep(
            q, unit_offmodule_capacity(q, ma_q, off_scale=10), rates, cycles=100
        )
        rows_h = offered_load_sweep(
            h, unit_offmodule_capacity(h, ma_h, off_scale=10), rates, cycles=100
        )
        for rq, rh in zip(rows_q, rows_h):
            assert rh["throughput"] > rq["throughput"]

    def test_saturation_rate_detects_blowup(self):
        """A ring driven hard must show a finite saturation rate while the
        same ring under featherweight load does not."""
        r = nw.ring(16)
        sat = saturation_rate(
            r, uniform_delay(r), [0.005, 0.3, 0.8], cycles=150
        )
        assert sat <= 0.8

    def test_saturation_inf_when_light(self):
        r = nw.ring(8)
        sat = saturation_rate(r, uniform_delay(r), [0.001, 0.002], cycles=50)
        assert sat == float("inf")


class TestDeBruijnNucleus:
    def test_matches_explicit(self):
        import networkx as nx

        for n in (2, 3, 4):
            a = nw.debruijn_nucleus(n).build()
            b = nw.debruijn(2, n)
            assert nx.is_isomorphic(a.to_networkx(), b.to_networkx())

    def test_cn_over_debruijn(self):
        """CN(l, dB): fixed degree ≤ 6, diameter l·n + l − 1."""
        nuc = nw.debruijn_nucleus(2)
        g = nw.ring_cn(2, nuc)
        assert g.num_nodes == 16
        assert mt.diameter(g) == 2 * nuc.diameter() + 1

    def test_no_symmetric_variant(self):
        with pytest.raises(ValueError, match="distinct"):
            nw.ring_cn(2, nw.debruijn_nucleus(2), symmetric=True)


class TestPaperWorkedNumbers:
    """§5.3's concrete sentences, as formula-level checks."""

    def test_17_cube_offmodule_links(self):
        """'a node in a 17-cube has 14 (or 13) off-module links' with a
        3-cube (or 4-cube) per module."""
        from repro.analysis.formulas import hypercube_point

        assert hypercube_point(17, module_bits=3).i_degree == 14
        assert hypercube_point(17, module_bits=4).i_degree == 13

    def test_8_star_offmodule_links(self):
        """'a node in a 8-star has 6 (or 5) off-module links' — consistent
        with k-substar modules for k = 2 (or 3): off-links = n − k."""
        from repro.analysis.formulas import star_point

        assert star_point(8, module_substar=2).i_degree == 6
        assert star_point(8, module_substar=3).i_degree == 5

    def test_ring_cn_offmodule_values(self):
        """'equal to 1 when l = 2 and 2 when l >= 3' — measured exactly in
        test_clustering; here the formula-level I-degree stays <= those."""
        from repro.analysis.formulas import ring_cn_point

        assert ring_cn_point(2, 16, 4, 4).i_degree <= 1
        for l in (3, 4, 5):
            assert ring_cn_point(l, 16, 4, 4).i_degree <= 2

    def test_hsn_family_offmodule_values(self):
        """'the corresponding numbers for an l-level HSN, complete-CN, or
        super-flip network are 1,2,3,4 ... when l = 2,3,4,5'."""
        from repro.analysis.formulas import (
            complete_cn_point,
            hsn_point,
            super_flip_point,
        )

        for l, expect in ((2, 1), (3, 2), (4, 3), (5, 4)):
            for fn in (hsn_point, complete_cn_point, super_flip_point):
                pt = fn(l, 16, 4, 4)
                assert pt.i_degree <= expect
                assert pt.i_degree > expect - 1  # the bound is near-tight


class TestRouterDrivenSimulation:
    def test_sorting_router_drives_simulator(self):
        """The Theorem-4.1 router plugs into the packet simulator as a
        distributed (table-free) next-hop function: all packets deliver,
        with bounded stretch vs shortest-path routing."""
        import numpy as np

        from repro.core.superip import build_super_ip_graph
        from repro.routing import SuperIPRouter
        from repro.sim import PacketSimulator, uniform_random

        nuc = nw.hypercube_nucleus(2)
        sgs = SuperGeneratorSet.transpositions(2)
        g = build_super_ip_graph(nuc, sgs)
        r = SuperIPRouter(nuc, sgs)

        rng = np.random.default_rng(0)
        injections = uniform_random(g, 0.05, 100, rng)
        sorter = PacketSimulator(g, next_hop=r.next_hop_function(g)).run(injections)
        shortest = PacketSimulator(g).run(injections)
        assert sorter.undelivered == 0
        assert sorter.delivered == shortest.delivered
        assert sorter.mean_hops <= 2.0 * shortest.mean_hops

    def test_hop_guard_trips_on_loops(self):
        import pytest as _pytest

        from repro.sim import PacketSimulator

        r = nw.ring(6)

        def bad_next_hop(u, dst):
            return (u + 1) % 6 if u != 3 else 2  # 2 <-> 3 ping-pong

        sim = PacketSimulator(r, next_hop=bad_next_hop)
        with _pytest.raises(RuntimeError, match="hop guard"):
            sim.run([(0, 2, 5)])
