"""Tests for the packet simulator, delay policies and workloads."""

import numpy as np
import pytest

from repro import networks as nw
from repro.metrics import nucleus_modules, subcube_modules
from repro.sim import (
    PacketSimulator,
    bit_reversal_pairs,
    complement_pairs,
    hotspot,
    on_off_module_delay,
    permutation_traffic,
    random_permutation_traffic,
    transpose_pairs,
    uniform_delay,
    uniform_random,
    unit_node_capacity,
    unit_offmodule_capacity,
)


class TestSimulatorBasics:
    def test_single_packet_latency_is_path_delay(self):
        r = nw.ring(8)
        sim = PacketSimulator(r, delays=1)
        stats = sim.run([(0, 0, 4)])
        assert stats.delivered == 1
        assert stats.mean_latency == 4  # 4 hops × 1 cycle
        assert stats.mean_hops == 4

    def test_custom_delay(self):
        r = nw.ring(8)
        sim = PacketSimulator(r, delays=3)
        stats = sim.run([(0, 0, 2)])
        assert stats.mean_latency == 6

    def test_self_packets_rejected(self):
        r = nw.ring(6)
        sim = PacketSimulator(r)
        with pytest.raises(ValueError, match="src == dst"):
            sim.run([(0, 2, 2)])

    def test_out_of_range_injection_rejected(self):
        r = nw.ring(6)
        sim = PacketSimulator(r)
        with pytest.raises(ValueError, match=r"in \[0, 6\)"):
            sim.run([(0, 0, 6)])
        with pytest.raises(ValueError, match="injection #1"):
            sim.run([(0, 0, 3), (0, -1, 2)])

    def test_negative_injection_time_rejected(self):
        r = nw.ring(6)
        sim = PacketSimulator(r)
        with pytest.raises(ValueError, match=">= 0"):
            sim.run([(-1, 0, 3)])

    def test_fifo_contention(self):
        """Two packets sharing a channel: second waits for the first."""
        p = nw.path(3)
        sim = PacketSimulator(p, delays=2)
        # both injected at t=0 at node 0, destined for node 2
        stats = sim.run([(0, 0, 2), (0, 0, 2)])
        assert stats.delivered == 2
        # packet 1: 2+2 = 4; packet 2: waits 2 on first channel: 2+2+2=6
        assert stats.max_latency == 6
        assert stats.mean_latency == 5

    def test_max_cycles_cutoff(self):
        r = nw.ring(10)
        sim = PacketSimulator(r, delays=10)
        stats = sim.run([(0, 0, 5)], max_cycles=5)
        assert stats.undelivered == 1

    def test_off_hop_accounting(self):
        g = nw.hsn_hypercube(2, 2)
        ma = nucleus_modules(g)
        sim = PacketSimulator(g, module_of=ma.module_of)
        rng = np.random.default_rng(0)
        stats = sim.run(uniform_random(g, 0.05, 50, rng))
        assert stats.delivered > 0
        assert stats.mean_off_hops <= stats.mean_hops
        # HCN I-diameter is 1: no packet crosses modules more than once
        assert stats.mean_off_hops <= 1.0

    def test_bad_delay_array(self):
        r = nw.ring(5)
        with pytest.raises(ValueError):
            PacketSimulator(r, delays=np.ones(3, dtype=int))
        with pytest.raises(ValueError):
            PacketSimulator(r, delays=0)

    def test_custom_next_hop(self):
        q = nw.hypercube(3)
        # e-cube routing as a next-hop function
        def nh(u, dst):
            diff = u ^ dst
            bit = (diff & -diff).bit_length() - 1
            return u ^ (1 << bit)

        sim = PacketSimulator(q, next_hop=nh)
        stats = sim.run([(0, 0, 7)])
        assert stats.mean_hops == 3

    def test_throughput_positive(self):
        q = nw.hypercube(4)
        rng = np.random.default_rng(1)
        stats = PacketSimulator(q).run(uniform_random(q, 0.1, 100, rng))
        assert stats.throughput > 0
        assert 0 <= stats.mean_utilization <= 1


class TestPolicies:
    def test_uniform_delay(self):
        q = nw.hypercube(3)
        d = uniform_delay(q, 4)
        assert (d == 4).all()
        assert len(d) == q.adjacency_csr().nnz

    def test_unit_node_capacity(self):
        q = nw.hypercube(3)
        d = unit_node_capacity(q)
        assert (d == 3).all()  # regular graph: every channel = degree

    def test_unit_node_capacity_irregular(self):
        g = nw.hsn_hypercube(2, 2)  # degrees 2 and 3
        d = unit_node_capacity(g)
        assert set(np.unique(d)) == {2, 3}

    def test_on_off_module_delay(self):
        g = nw.hsn_hypercube(2, 2)
        ma = nucleus_modules(g)
        d = on_off_module_delay(g, ma, on_delay=1, off_factor=7)
        assert set(np.unique(d)) == {1, 7}

    def test_unit_offmodule_capacity(self):
        q = nw.hypercube(5)
        ma = subcube_modules(q, 2)
        d = unit_offmodule_capacity(q, ma)
        # off-module channels get delay = 3 (n - c off links per node)
        assert d.max() == 3
        assert d.min() == 1


class TestWorkloads:
    def test_uniform_random_excludes_self(self):
        q = nw.hypercube(3)
        rng = np.random.default_rng(2)
        for t, s, d in uniform_random(q, 0.5, 20, rng):
            assert s != d
            assert 0 <= t < 20

    def test_uniform_random_rate_validation(self):
        with pytest.raises(ValueError):
            uniform_random(nw.ring(4), 1.5, 10, np.random.default_rng(0))

    def test_permutation_traffic(self):
        inj = permutation_traffic([(0, 1), (1, 0), (2, 2)], packets_per_pair=2, spacing=5)
        assert len(inj) == 4  # self pair dropped
        assert {t for t, _, _ in inj} == {0, 5}

    def test_random_permutation_traffic(self):
        q = nw.hypercube(3)
        inj = random_permutation_traffic(q, np.random.default_rng(3))
        assert len(inj) <= 8

    def test_bit_reversal_pairs(self):
        q = nw.hypercube(3)
        pairs = bit_reversal_pairs(q)
        lab = dict(enumerate(q.labels))
        for s, d in pairs:
            assert lab[d] == tuple(reversed(lab[s]))

    def test_transpose_pairs(self):
        q = nw.hypercube(4)
        for s, d in transpose_pairs(q):
            ls, ld = q.labels[s], q.labels[d]
            assert ld == ls[2:] + ls[:2]

    def test_complement_pairs(self):
        q = nw.hypercube(3)
        for s, d in complement_pairs(q):
            assert all(a != b for a, b in zip(q.labels[s], q.labels[d]))

    def test_hotspot(self):
        q = nw.hypercube(4)
        rng = np.random.default_rng(4)
        inj = hotspot(q, 0.3, 50, rng, hotspot_node=0, hotspot_fraction=1.0)
        dsts = {d for _, s, d in inj if s != 0}
        assert dsts == {0}


class TestLatencyClaims:
    """Section 5: light-load latency tracks the cost figures of merit."""

    def _light_load_latency(self, net, delays, seed=0):
        rng = np.random.default_rng(seed)
        sim = PacketSimulator(net, delays=delays)
        stats = sim.run(uniform_random(net, 0.01, 400, rng))
        assert stats.delivered > 50
        return stats.mean_latency

    def test_dd_cost_ordering_under_unit_node_capacity(self):
        """At equal size, the lower-DD network has lower simulated latency
        under the unit-node-capacity model."""
        s = nw.star_graph(5)  # 120 nodes, DD = 4*6 = 24
        r = nw.ring(120)  # DD = 2*60 = 120
        lat_s = self._light_load_latency(s, unit_node_capacity(s))
        lat_r = self._light_load_latency(r, unit_node_capacity(r))
        assert lat_s < lat_r

    def test_ii_cost_ordering_with_slow_offmodule_links(self):
        """With off-module links 10× slower, HSN (II ≈ 0.9) beats the
        hypercube (II = 4) of the same size."""
        h = nw.hsn_hypercube(2, 3)  # 64 nodes, modules of 8
        q = nw.hypercube(6)  # 64 nodes
        ma_h = nucleus_modules(h)
        ma_q = subcube_modules(q, 3)  # modules of 8
        lat_h = self._light_load_latency(h, on_off_module_delay(h, ma_h, off_factor=10))
        lat_q = self._light_load_latency(q, on_off_module_delay(q, ma_q, off_factor=10))
        assert lat_h < lat_q
