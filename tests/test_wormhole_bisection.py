"""Tests for the cut-through simulator and bisection metrics."""

import numpy as np
import pytest

from repro import metrics as mt
from repro import networks as nw
from repro.metrics.bisection import (
    constant_bisection_latency_score,
    exact_bisection_width,
    fiedler_bisection,
    known_bisection_width,
)
from repro.sim import uniform_random, unit_offmodule_capacity
from repro.sim.wormhole import WormholeSimulator


class TestWormholeBasics:
    def test_single_message_pipelined_latency(self):
        """Light load on a uniform path: latency = hops·d + (L−1)·d —
        pipelining, not store-and-forward."""
        p = nw.path(5)
        sim = WormholeSimulator(p, delays=1)
        stats = sim.run([(0, 0, 4)], length=8)
        assert stats.delivered == 1
        # header: 4 cycles; tail: 4 + 7 more flit cycles
        assert stats.mean_latency == 4 + 7

    def test_store_and_forward_would_be_slower(self):
        """The same transfer store-and-forward costs hops·L·d."""
        from repro.sim import PacketSimulator

        p = nw.path(5)
        worm = WormholeSimulator(p, delays=1).run([(0, 0, 4)], length=8)
        # a store-and-forward 'packet' of service time 8 per channel
        saf = PacketSimulator(p, delays=8).run([(0, 0, 4)])
        assert worm.mean_latency < saf.mean_latency
        assert saf.mean_latency == 4 * 8

    def test_length_one_equals_packet(self):
        from repro.sim import PacketSimulator

        q = nw.hypercube(3)
        a = WormholeSimulator(q, delays=2).run([(0, 0, 7)], length=1)
        b = PacketSimulator(q, delays=2).run([(0, 0, 7)])
        assert a.mean_latency == b.mean_latency

    def test_slow_channel_throttles_stream(self):
        """A slow middle channel dominates the serialization term."""
        p = nw.path(3)
        delays = np.array([1, 10, 10, 1], dtype=np.int64)
        # arcs in CSR order for path(3): (0->1), (1->0), (1->2), (2->1)
        sim = WormholeSimulator(p, delays=delays)
        stats = sim.run([(0, 0, 2)], length=4)
        # slowest channel (d=10) serializes: >= 4*10 cycles total
        assert stats.mean_latency >= 40

    def test_channel_contention(self):
        p = nw.path(2)
        sim = WormholeSimulator(p, delays=1)
        stats = sim.run([(0, 0, 1), (0, 0, 1)], length=4)
        assert stats.delivered == 2
        assert stats.max_latency == 8  # second message waits for the first

    def test_validation(self):
        p = nw.path(3)
        with pytest.raises(ValueError):
            WormholeSimulator(p, delays=0)
        with pytest.raises(ValueError):
            WormholeSimulator(p).run([(0, 0, 2)], length=0)

    def test_max_cycles(self):
        r = nw.ring(10)
        stats = WormholeSimulator(r, delays=5).run([(0, 0, 5)], length=4, max_cycles=3)
        assert stats.undelivered == 1


class TestWormholeICDegreeClaim:
    def test_long_messages_track_i_degree(self):
        """'when wormhole or cut-through routing is used and messages are
        long, the delay ... is approximately proportional to its
        inter-cluster degree': with per-node off-module capacity fixed, the
        off-module serialization term scales with the I-degree."""
        rng_seed = 3
        results = {}
        for g, cluster in [
            (nw.hypercube(6), lambda g: mt.subcube_modules(g, 3)),  # I-deg 3
            (nw.hsn_hypercube(2, 3), mt.nucleus_modules),           # I-deg ~0.9
        ]:
            ma = cluster(g)
            delays = unit_offmodule_capacity(g, ma, off_scale=4)
            sim = WormholeSimulator(g, delays=delays, module_of=ma.module_of)
            rng = np.random.default_rng(rng_seed)
            stats = sim.run(uniform_random(g, 0.005, 400, rng), length=32)
            results[g.name] = stats.mean_latency
        assert results["HSN(2,Q3)"] < results["Q6"]
        # the gap should be large-ish for long messages (I-degree 3 vs ~1)
        assert results["Q6"] / results["HSN(2,Q3)"] > 1.5


class TestBisection:
    def test_exact_ring(self):
        assert exact_bisection_width(nw.ring(8)) == 2

    def test_exact_hypercube(self):
        assert exact_bisection_width(nw.hypercube(3)) == 4
        assert exact_bisection_width(nw.hypercube(4)) == 8

    def test_exact_complete(self):
        assert exact_bisection_width(nw.complete_graph(6)) == 9

    def test_exact_path(self):
        assert exact_bisection_width(nw.path(6)) == 1

    def test_exact_matches_known(self):
        assert exact_bisection_width(nw.hypercube(4)) == known_bisection_width(
            "hypercube", n=4
        )
        assert exact_bisection_width(nw.ring(10)) == known_bisection_width("ring", n=10)

    def test_exact_limit(self):
        with pytest.raises(ValueError):
            exact_bisection_width(nw.hypercube(6))

    def test_fiedler_upper_bound(self):
        for g in (nw.ring(12), nw.hypercube(4), nw.torus([4, 4])):
            fb, side = fiedler_bisection(g)
            assert side.sum() == g.num_nodes // 2
            assert fb >= exact_bisection_width(g) if g.num_nodes <= 20 else True

    def test_fiedler_tight_on_ring(self):
        fb, _ = fiedler_bisection(nw.ring(16))
        assert fb == 2

    def test_fiedler_hypercube(self):
        fb, _ = fiedler_bisection(nw.hypercube(5))
        assert fb >= 16  # true bisection
        assert fb <= 32  # and not absurdly loose

    def test_known_formulas(self):
        assert known_bisection_width("torus2d", k=8) == 16
        assert known_bisection_width("ccc", n=4) == 8
        with pytest.raises(KeyError):
            known_bisection_width("nope")
        with pytest.raises(ValueError):
            known_bisection_width("torus2d", k=5)


class TestSection51Tradeoff:
    def test_constant_bisection_favors_torus(self):
        """§5.1: under constant bisection bandwidth, the low-dimensional
        torus beats both the hypercube and the hierarchical networks."""
        torus_score = constant_bisection_latency_score(
            16, known_bisection_width("torus2d", k=16)
        )
        cube_score = constant_bisection_latency_score(
            8, known_bisection_width("hypercube", n=8)
        )
        # HSN(2,Q4): diameter 9; bisection upper bound from Fiedler split
        hsn = nw.hsn_hypercube(2, 4)
        fb, _ = fiedler_bisection(hsn)
        hsn_score = constant_bisection_latency_score(9, fb)
        assert torus_score < cube_score
        assert torus_score < hsn_score

    def test_constant_pinout_favors_superip(self):
        """...while under constant pin-out (ID-cost) the super-IP graphs
        win (Figure 4)."""
        from repro.analysis.formulas import hsn_point, torus_point

        t = torus_point(16, 2, module_side=4)
        h = hsn_point(2, 16, 4, 4, "Q4")
        assert h.id_cost < t.id_cost
