"""Tests for the percolation resilience subsystem (repro.fault.percolation).

Covers the batched masked union-find, monotone coupling guarantees,
threshold estimation, parallel/engine determinism, and input validation.
"""

import json
import math

import numpy as np
import pytest

from repro import networks as nw
from repro import obs
from repro.fault.percolation import (
    default_probability_grid,
    estimate_threshold,
    masked_components,
    percolation_comparison,
    percolation_sweep,
    threshold_traffic_runs,
)


class TestMaskedComponents:
    def test_intact_graph_single_component(self):
        g = nw.hypercube(3)
        labels = masked_components(g)
        assert labels.shape == (1, 8)
        assert (labels == 0).all()

    def test_dead_node_labeled_minus_one(self):
        g = nw.ring(6)
        alive = np.ones(6, dtype=bool)
        alive[2] = False
        labels = masked_components(g, alive)[0]
        assert labels[2] == -1
        # remaining nodes still connected around the ring
        live = labels[alive]
        assert (live == live[0]).all()

    def test_edge_mask_splits_ring(self):
        g = nw.ring(6)
        # kill two opposite edges: ring splits into two arcs
        edge_alive = np.ones(6, dtype=bool)
        edge_alive[0] = False  # (0, 1)
        edge_alive[3] = False  # (3, 4)
        labels = masked_components(g, edge_alive=edge_alive)[0]
        assert len(np.unique(labels)) == 2

    def test_batch_rows_independent(self):
        g = nw.hypercube(3)
        alive = np.ones((3, 8), dtype=bool)
        alive[1, :4] = False  # row 1: half the cube dead
        labels = masked_components(g, alive)
        assert (labels[0] == 0).all()
        assert (labels[2] == 0).all()
        assert (labels[1, :4] == -1).all()
        assert (labels[1, 4:] == 4).all()  # survivors form Q2 rooted at 4

    def test_component_counter_incremented(self):
        g = nw.ring(8)
        obs.reset()
        obs.enable()
        try:
            masked_components(g)
            counters = obs.report()["counters"]
            assert counters.get("percolation.components") == 1
        finally:
            obs.disable()
            obs.reset()


class TestPercolationSweep:
    def test_giant_fraction_monotone_in_p(self):
        g = nw.hypercube(4)
        rows = percolation_sweep(g, trials=4, kind="node", seed=3)
        fracs = [r["giant_frac"] for r in rows]
        assert all(b >= a - 1e-12 for a, b in zip(fracs, fracs[1:]))
        assert rows[-1]["giant_frac"] == 1.0  # p = 1.0: intact

    def test_link_kind_full_survival_intact(self):
        g = nw.hypercube(3)
        rows = percolation_sweep(g, [1.0], trials=2, kind="link", seed=0)
        assert rows[0]["giant_frac"] == 1.0
        assert rows[0]["routability"] == 1.0

    @pytest.mark.parametrize("kind", ["node", "link"])
    def test_bit_identical_across_jobs(self, kind):
        g = nw.hypercube(4)
        probs = [0.2, 0.5, 0.8]
        serial = percolation_sweep(g, probs, trials=4, kind=kind, seed=1, jobs=1)
        pooled = percolation_sweep(g, probs, trials=4, kind=kind, seed=1, jobs=4)
        assert json.dumps(serial) == json.dumps(pooled)

    def test_seed_changes_samples(self):
        g = nw.hypercube(4)
        a = percolation_sweep(g, [0.5], trials=4, kind="node", seed=0)
        b = percolation_sweep(g, [0.5], trials=4, kind="node", seed=99)
        assert a != b

    def test_default_grid_shape(self):
        grid = default_probability_grid()
        assert grid[0] == 0.05 and grid[-1] == 1.0 and len(grid) == 20


class TestValidation:
    def setup_method(self):
        self.g = nw.ring(8)

    @pytest.mark.parametrize(
        "probs",
        [[], [-0.1, 0.5], [0.5, 1.5], [0.5, 0.2], [0.3, 0.3]],
    )
    def test_bad_grids_rejected(self, probs):
        with pytest.raises(ValueError):
            percolation_sweep(self.g, probs, trials=1)

    def test_bad_trials_rejected(self):
        with pytest.raises(ValueError, match="trials"):
            percolation_sweep(self.g, [0.5], trials=0)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            percolation_sweep(self.g, [0.5], trials=1, kind="router")

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            threshold_traffic_runs(self.g, 1.7, kind="node")


class TestThresholdEstimate:
    def test_interpolates_crossing(self):
        rows = [
            {"p": 0.2, "giant_frac": 0.1},
            {"p": 0.4, "giant_frac": 0.3},
            {"p": 0.6, "giant_frac": 0.7},
        ]
        thr = estimate_threshold(rows, target=0.5)
        assert thr == pytest.approx(0.5)

    def test_never_crossing_is_nan(self):
        rows = [{"p": 0.5, "giant_frac": 0.2}, {"p": 1.0, "giant_frac": 0.4}]
        assert math.isnan(estimate_threshold(rows))

    def test_registry_families_have_finite_thresholds(self):
        # every family in the default comparison percolates by p = 1
        g = nw.ring(16)
        rows = percolation_sweep(g, trials=4, kind="node", seed=0)
        assert math.isfinite(estimate_threshold(rows))


class TestDegradedTraffic:
    def test_delivery_non_decreasing_in_p(self):
        g = nw.hypercube(4)
        rows = threshold_traffic_runs(
            g, 0.5, kind="node", delta=0.3, rate=0.05, cycles=40, seed=2
        )
        ratios = [r["delivery_ratio"] for r in rows]
        assert all(b >= a - 1e-12 for a, b in zip(ratios, ratios[1:]))

    @pytest.mark.parametrize("engine", ["event", "reference"])
    def test_engines_agree(self, engine):
        g = nw.hypercube(3)
        rows = threshold_traffic_runs(
            g, 0.6, kind="link", delta=0.2, rate=0.05, cycles=30,
            seed=5, engine=engine,
        )
        # the probe grid and per-point draws are engine-independent
        assert [r["p"] for r in rows] == [0.4, 0.6, 0.8]
        for r in rows:
            assert 0.0 <= r["delivery_ratio"] <= 1.0

    def test_engines_bit_identical(self):
        g = nw.hypercube(3)
        kw = dict(kind="node", delta=0.25, rate=0.05, cycles=30, seed=9)
        ev = threshold_traffic_runs(g, 0.5, engine="event", **kw)
        ref = threshold_traffic_runs(g, 0.5, engine="reference", **kw)
        assert json.dumps(ev) == json.dumps(ref)


class TestComparison:
    def test_small_case_list_rows(self):
        cases = [nw.ring(8), nw.hypercube(3)]
        rows = percolation_comparison(
            cases, [0.3, 0.6, 0.9, 1.0], trials=2, kind="node",
            seed=0, traffic=False,
        )
        assert [r["network"] for r in rows] == ["ring(8)", "Q3"]
        for r in rows:
            assert r["routability@1.0"] == 1.0
