"""Cross-validation: every family built two independent ways must agree.

The IP-graph engine (label closure) and the explicit constructions
(textbook definitions / tuple-state closure) are entirely separate code
paths; isomorphism between them validates both.
"""

import networkx as nx
import pytest

from repro import networks as nw
from repro.core.superip import SuperGeneratorSet, build_super_ip_graph
from repro.networks.hier import explicit_super_graph


def iso(a, b) -> bool:
    return nx.is_isomorphic(a.to_networkx(), b.to_networkx())


class TestIPvsExplicitClassics:
    def test_hypercube(self):
        assert iso(nw.hypercube_ip(3), nw.hypercube(3))

    def test_hypercube_bigger(self):
        assert iso(nw.hypercube_ip(4), nw.hypercube(4))

    def test_star(self):
        assert iso(nw.star_ip(4), nw.star_graph(4))

    def test_pancake(self):
        assert iso(nw.pancake_ip(4), nw.pancake_graph(4))

    def test_shuffle_exchange(self):
        assert iso(nw.shuffle_exchange_ip(3), nw.shuffle_exchange(3))

    def test_shuffle_exchange_4(self):
        assert iso(nw.shuffle_exchange_ip(4), nw.shuffle_exchange(4))

    def test_debruijn_directed(self):
        a = nw.debruijn_ip(3)  # built with directed=True
        b = nw.debruijn(2, 3, directed=True)
        assert a.directed and b.directed
        assert nx.is_isomorphic(a.to_networkx(), b.to_networkx())

    def test_debruijn_node_count(self):
        for n in (2, 3, 4, 5):
            assert nw.debruijn_ip(n).num_nodes == 2**n


class TestHCNEquivalence:
    """'HCN(n,n) without diameter links is equivalent to HSN(2, Q_n)'."""

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_hcn_is_hsn2(self, n):
        assert iso(nw.hsn_hypercube(2, n), nw.hcn(n, diameter_links=False))

    @pytest.mark.parametrize("n", [2, 3])
    def test_hfn_is_hsn2_folded(self, n):
        hsn_fq = nw.hsn(2, nw.folded_hypercube_nucleus(n))
        assert iso(hsn_fq, nw.hfn(n, diameter_links=False))

    def test_hcn_with_diameter_links_not_isomorphic(self):
        # diameter links change the graph (diagonal degree increases)
        assert not iso(nw.hsn_hypercube(2, 2), nw.hcn(2, diameter_links=True))


class TestExplicitSuperGraph:
    """IP engine vs tuple-state closure over an explicit nucleus."""

    @pytest.mark.parametrize("fam", ["transpositions", "ring", "complete-shifts", "flips"])
    @pytest.mark.parametrize("l", [2, 3])
    def test_plain_variants(self, fam, l):
        factory = {
            "transpositions": SuperGeneratorSet.transpositions,
            "ring": SuperGeneratorSet.ring,
            "complete-shifts": SuperGeneratorSet.complete_shifts,
            "flips": SuperGeneratorSet.flips,
        }[fam]
        sgs = factory(l)
        nuc_spec = nw.hypercube_nucleus(2)
        via_ip = build_super_ip_graph(nuc_spec, sgs)
        via_explicit = explicit_super_graph(nw.hypercube(2), sgs)
        assert via_ip.num_nodes == via_explicit.num_nodes
        assert iso(via_ip, via_explicit)

    @pytest.mark.parametrize("fam,factory", [
        ("transpositions", SuperGeneratorSet.transpositions),
        ("ring", SuperGeneratorSet.ring),
    ])
    def test_symmetric_variants(self, fam, factory):
        sgs = factory(2)
        nuc_spec = nw.hypercube_nucleus(2)
        via_ip = build_super_ip_graph(nuc_spec, sgs, symmetric=True)
        via_explicit = explicit_super_graph(nw.hypercube(2), sgs, symmetric=True)
        assert via_ip.num_nodes == via_explicit.num_nodes
        assert iso(via_ip, via_explicit)

    def test_petersen_nucleus(self):
        """Cyclic Petersen networks need the explicit path (Petersen is not
        a Cayley graph)."""
        g = nw.cyclic_petersen_network(2)
        assert g.num_nodes == 100
        from repro.metrics.distances import diameter

        # Theorem 4.1: l*D_G + t = 2*2 + 1
        assert diameter(g) == 5

    def test_explicit_nucleus_modules_work(self):
        from repro.metrics.clustering import nucleus_modules

        g = nw.cyclic_petersen_network(2)
        ma = nucleus_modules(g)
        assert ma.num_modules == 10
        assert ma.max_module_size == 10


class TestFamilyBuilders:
    def test_rcc(self):
        g = nw.rcc(2, 4)
        assert g.num_nodes == 16
        from repro.metrics.distances import diameter

        assert diameter(g) == 2 * 1 + 1  # (D_G+1)l - 1 with D_G = 1

    def test_macro_star_like(self):
        g = nw.macro_star_like(2, 3)
        assert g.num_nodes == 36

    def test_directed_cn(self):
        g = nw.directed_cn(3, nw.hypercube_nucleus(1))
        assert g.directed
        assert g.num_nodes == 8
        from repro.metrics.distances import eccentricities

        # still strongly connected: the shift has order l
        assert (eccentricities(g) >= 0).all()

    def test_symmetric_hsn_builder(self):
        g = nw.symmetric_hsn(2, nw.hypercube_nucleus(2))
        assert g.num_nodes == 32
        assert g.is_regular()

    def test_super_flip_hypercube(self):
        g = nw.super_flip_hypercube(3, 2)
        assert g.num_nodes == 64

    def test_ring_cn_folded_hypercube(self):
        g = nw.ring_cn_folded_hypercube(2, 2)
        assert g.num_nodes == 256 // 16  # (2^2)^2 = 16
