"""Unit and property tests for the permutation algebra."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.permutation import (
    Permutation,
    all_permutations,
    block_permutation,
    cyclic_shift_left,
    cyclic_shift_right,
    from_cycles,
    identity,
    lift_to_block,
    prefix_reversal,
    random_permutation,
    transposition,
)


def perms(max_k: int = 8):
    return st.integers(2, max_k).flatmap(
        lambda k: st.permutations(list(range(k))).map(Permutation)
    )


def two_perms_same_size(max_k: int = 8):
    return st.integers(2, max_k).flatmap(
        lambda k: st.tuples(
            st.permutations(list(range(k))).map(Permutation),
            st.permutations(list(range(k))).map(Permutation),
        )
    )


class TestConstruction:
    def test_identity(self):
        p = identity(5)
        assert p.is_identity()
        assert p.img == (0, 1, 2, 3, 4)

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Permutation([0, 0, 1])
        with pytest.raises(ValueError):
            Permutation([0, 2])
        with pytest.raises(ValueError):
            Permutation([-1, 0])

    def test_transposition(self):
        p = transposition(4, 1, 3)
        assert p((10, 11, 12, 13)) == (10, 13, 12, 11)
        assert p.is_involution()

    def test_transposition_out_of_range(self):
        with pytest.raises(ValueError):
            transposition(3, 0, 3)

    def test_cyclic_shift_left(self):
        p = cyclic_shift_left(6, 3)
        # matches the paper's generator "456123": y4 y5 y6 y1 y2 y3
        assert p((1, 2, 3, 4, 5, 6)) == (4, 5, 6, 1, 2, 3)

    def test_cyclic_shift_right(self):
        p = cyclic_shift_right(5, 2)
        assert p((0, 1, 2, 3, 4)) == (3, 4, 0, 1, 2)

    def test_shift_left_right_inverse(self):
        assert cyclic_shift_left(7, 3).inverse() == cyclic_shift_right(7, 3)

    def test_prefix_reversal(self):
        p = prefix_reversal(5, 3)
        assert p((0, 1, 2, 3, 4)) == (2, 1, 0, 3, 4)

    def test_prefix_reversal_full(self):
        p = prefix_reversal(4, 4)
        assert p((0, 1, 2, 3)) == (3, 2, 1, 0)

    def test_prefix_reversal_range(self):
        with pytest.raises(ValueError):
            prefix_reversal(4, 5)
        with pytest.raises(ValueError):
            prefix_reversal(4, 0)

    def test_from_cycles_paper_convention(self):
        # (1;2) in the paper swaps positions 1 and 2 (1-based)
        p = from_cycles(6, [(1, 2)], one_based=True)
        assert p((1, 2, 3, 4, 5, 6)) == (2, 1, 3, 4, 5, 6)

    def test_from_cycles_three_cycle(self):
        p = from_cycles(5, [(0, 2, 4)])
        # symbol at 0 moves to 2, at 2 to 4, at 4 to 0
        lab = ("a", "b", "c", "d", "e")
        out = p(lab)
        assert out[2] == "a" and out[4] == "c" and out[0] == "e"
        assert out[1] == "b" and out[3] == "d"

    def test_from_cycles_rejects_overlap(self):
        with pytest.raises(ValueError):
            from_cycles(5, [(0, 1), (1, 2)])

    def test_from_cycles_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            from_cycles(3, [(0, 3)])

    def test_block_permutation(self):
        p = block_permutation((1, 0), 3)
        assert p((1, 2, 3, 4, 5, 6)) == (4, 5, 6, 1, 2, 3)

    def test_block_permutation_three_blocks(self):
        p = block_permutation((2, 0, 1), 2)
        assert p(("a", "b", "c", "d", "e", "f")) == ("e", "f", "a", "b", "c", "d")

    def test_lift_to_block_leftmost(self):
        p = lift_to_block(transposition(2, 0, 1), l=3, m=2, block=0)
        assert p((1, 2, 3, 4, 5, 6)) == (2, 1, 3, 4, 5, 6)

    def test_lift_to_block_middle(self):
        p = lift_to_block(transposition(2, 0, 1), l=3, m=2, block=1)
        assert p((1, 2, 3, 4, 5, 6)) == (1, 2, 4, 3, 5, 6)

    def test_lift_size_mismatch(self):
        with pytest.raises(ValueError):
            lift_to_block(identity(3), l=2, m=2)

    def test_random_permutation_reproducible(self):
        a = random_permutation(10, np.random.default_rng(7))
        b = random_permutation(10, np.random.default_rng(7))
        assert a == b

    def test_all_permutations_count(self):
        assert len(list(all_permutations(4))) == 24


class TestGroupLaws:
    @given(two_perms_same_size())
    def test_then_semantics(self, pq):
        p, q = pq
        label = tuple(range(100, 100 + p.size))
        assert p.then(q)(label) == q(p(label))

    @given(two_perms_same_size())
    def test_mul_semantics(self, pq):
        p, q = pq
        label = tuple(range(p.size))
        assert (p * q)(label) == p(q(label))

    @given(perms())
    def test_inverse(self, p):
        label = tuple(range(p.size))
        assert p.inverse()(p(label)) == label
        assert p(p.inverse()(label)) == label

    @given(perms())
    def test_double_inverse(self, p):
        assert p.inverse().inverse() == p

    @given(perms())
    def test_identity_neutral(self, p):
        e = identity(p.size)
        assert p.then(e) == p
        assert e.then(p) == p

    @given(st.integers(2, 7).flatmap(
        lambda k: st.tuples(*[st.permutations(list(range(k))).map(Permutation)] * 3)
    ))
    def test_associativity(self, pqr):
        p, q, r = pqr
        assert p.then(q).then(r) == p.then(q.then(r))

    @given(perms(), st.integers(0, 12))
    def test_power(self, p, n):
        expected = identity(p.size)
        for _ in range(n):
            expected = expected.then(p)
        assert p**n == expected

    @given(perms())
    def test_negative_power(self, p):
        assert p**-1 == p.inverse()
        assert p**-2 == p.inverse().then(p.inverse())

    @given(perms())
    def test_order(self, p):
        k = p.order()
        assert (p**k).is_identity()
        for d in range(1, k):
            if k % d == 0 and d < k:
                assert not (p**d).is_identity() or d == k

    @given(two_perms_same_size())
    def test_parity_multiplicative(self, pq):
        p, q = pq
        assert p.then(q).parity() == (p.parity() + q.parity()) % 2

    @given(perms())
    def test_cycles_roundtrip(self, p):
        rebuilt = from_cycles(p.size, p.cycles())
        assert rebuilt == p

    @given(perms())
    def test_support(self, p):
        sup = p.support()
        label = tuple(range(p.size))
        moved = {i for i in range(p.size) if p(label)[i] != label[i]}
        assert moved == sup

    @given(perms())
    def test_orbit_length_divides_order(self, p):
        label = tuple(range(p.size))
        orb = p.orbit(label)
        assert p.order() % len(orb) == 0 or len(orb) == p.order()
        assert orb[0] == label

    def test_orbit_of_shift(self):
        p = cyclic_shift_left(6, 2)
        assert len(p.orbit(tuple(range(6)))) == 3

    @given(perms())
    def test_hashable_consistent(self, p):
        q = Permutation(p.img)
        assert hash(p) == hash(q)
        assert p == q

    def test_str_cycle_notation(self):
        p = transposition(4, 0, 2)
        assert str(p) == "(0 2)"
        assert str(identity(3)) == "id[3]"

    def test_involution_detection(self):
        assert transposition(5, 1, 2).is_involution()
        assert not cyclic_shift_left(5, 1).is_involution()

    def test_call_length_mismatch(self):
        with pytest.raises(ValueError):
            identity(3)((1, 2))

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            identity(3).then(identity(4))


class TestParityOrder:
    def test_transposition_odd(self):
        assert transposition(5, 0, 3).parity() == 1

    def test_identity_even(self):
        assert identity(6).parity() == 0

    def test_three_cycle_even(self):
        assert from_cycles(5, [(0, 1, 2)]).parity() == 0

    def test_shift_order(self):
        assert cyclic_shift_left(6, 2).order() == 3
        assert cyclic_shift_left(6, 1).order() == 6

    def test_lcm_order(self):
        p = from_cycles(5, [(0, 1), (2, 3, 4)])
        assert p.order() == math.lcm(2, 3)
