"""Tests for the super-IP layer: sizes, t/t_S, diameters (Theorems 3.1-4.4)."""

import math

import pytest

from repro.core.ipgraph import NUCLEUS, SUPER
from repro.core.superip import (
    NucleusSpec,
    SuperGeneratorSet,
    build_super_ip_graph,
    diameter_formula,
    min_supergen_steps,
    min_supergen_steps_symmetric,
    reachable_arrangements,
    super_ip_size,
    symmetric_diameter_formula,
    symmetric_super_ip_size,
)
from repro.core.permutation import identity, transposition
from repro.metrics.distances import diameter
from repro.networks.nuclei import (
    complete_nucleus,
    folded_hypercube_nucleus,
    generalized_hypercube_nucleus,
    hypercube_nucleus,
    pancake_nucleus,
    ring_nucleus,
    shuffle_exchange_nucleus,
    star_nucleus,
)

FAMILIES = {
    "transpositions": SuperGeneratorSet.transpositions,
    "ring": SuperGeneratorSet.ring,
    "complete": SuperGeneratorSet.complete_shifts,
    "flips": SuperGeneratorSet.flips,
}


class TestNucleusSpecs:
    @pytest.mark.parametrize(
        "spec,size,deg,diam",
        [
            (hypercube_nucleus(3), 8, 3, 3),
            (folded_hypercube_nucleus(3), 8, 4, 2),
            (complete_nucleus(5), 5, 4, 1),
            (star_nucleus(4), 24, 3, 4),
            (pancake_nucleus(4), 24, 3, 4),
            (ring_nucleus(6), 6, 2, 3),
            (generalized_hypercube_nucleus((3, 4)), 12, 5, 2),
            (shuffle_exchange_nucleus(3), 8, 3, 5),
        ],
    )
    def test_known_parameters(self, spec, size, deg, diam):
        g = spec.build()
        assert g.num_nodes == size == spec.size()
        assert g.max_degree == deg
        assert spec.diameter() == diam

    def test_distinct_symbols(self):
        assert hypercube_nucleus(2).has_distinct_symbols()
        assert not shuffle_exchange_nucleus(2).has_distinct_symbols()

    def test_m(self):
        assert hypercube_nucleus(3).m == 6
        assert star_nucleus(5).m == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            hypercube_nucleus(0)
        with pytest.raises(ValueError):
            generalized_hypercube_nucleus((1, 2))
        with pytest.raises(ValueError):
            NucleusSpec("bad", (0, 1), ())
        with pytest.raises(ValueError):
            NucleusSpec("bad", (0, 1), (identity(3),))


class TestSuperGeneratorSets:
    def test_counts(self):
        assert SuperGeneratorSet.transpositions(5).num_generators == 4
        assert SuperGeneratorSet.ring(2).num_generators == 1
        assert SuperGeneratorSet.ring(4).num_generators == 2
        assert SuperGeneratorSet.complete_shifts(4).num_generators == 3
        assert SuperGeneratorSet.flips(4).num_generators == 3
        assert SuperGeneratorSet.directed_ring(4).num_generators == 1

    def test_l_too_small(self):
        for factory in FAMILIES.values():
            with pytest.raises(ValueError):
                factory(1)

    def test_block_perm_size_validation(self):
        with pytest.raises(ValueError):
            SuperGeneratorSet("x", 3, (("bad", transposition(2, 0, 1)),))

    @pytest.mark.parametrize("l", [2, 3, 4, 5, 6])
    @pytest.mark.parametrize("fam", list(FAMILIES))
    def test_t_is_l_minus_1(self, l, fam):
        """'t ... is equal to l−1 for all the super-IP graphs introduced in
        Section 3.'"""
        assert min_supergen_steps(FAMILIES[fam](l)) == l - 1

    @pytest.mark.parametrize("l", [2, 3, 4, 5])
    def test_directed_ring_t(self, l):
        assert min_supergen_steps(SuperGeneratorSet.directed_ring(l)) == l - 1

    def test_t_symmetric_at_least_t(self):
        for l in (2, 3, 4):
            for fam, factory in FAMILIES.items():
                sgs = factory(l)
                assert min_supergen_steps_symmetric(sgs) >= min_supergen_steps(sgs)

    def test_invalid_supergens_detected(self):
        # a super-generator set that can never front block 1
        sgs = SuperGeneratorSet("stuck", 3, (("fix", transposition(3, 1, 2)),))
        with pytest.raises(ValueError):
            min_supergen_steps(sgs)


class TestArrangements:
    def test_transpositions_generate_all(self):
        assert len(reachable_arrangements(SuperGeneratorSet.transpositions(4))) == 24

    def test_flips_generate_all(self):
        assert len(reachable_arrangements(SuperGeneratorSet.flips(4))) == 24

    def test_ring_generates_rotations(self):
        assert len(reachable_arrangements(SuperGeneratorSet.ring(5))) == 5

    def test_complete_shifts_generate_rotations(self):
        assert len(reachable_arrangements(SuperGeneratorSet.complete_shifts(5))) == 5


class TestSizes:
    @pytest.mark.parametrize("fam", list(FAMILIES))
    @pytest.mark.parametrize("l", [2, 3])
    def test_theorem_3_2(self, fam, l):
        nuc = hypercube_nucleus(2)
        g = build_super_ip_graph(nuc, FAMILIES[fam](l))
        assert g.num_nodes == super_ip_size(nuc.size(), l) == 4**l

    def test_symmetric_hsn_size(self):
        """'a symmetric HSN(l,G) has l!·M^l nodes'."""
        nuc = hypercube_nucleus(2)
        for l in (2, 3):
            g = build_super_ip_graph(nuc, SuperGeneratorSet.transpositions(l), symmetric=True)
            assert g.num_nodes == math.factorial(l) * 4**l

    def test_symmetric_cn_size(self):
        """'A symmetric CN(l,G) has l·M^l nodes'."""
        nuc = hypercube_nucleus(2)
        for l in (2, 3):
            g = build_super_ip_graph(nuc, SuperGeneratorSet.ring(l), symmetric=True)
            assert g.num_nodes == l * 4**l
            assert g.num_nodes == symmetric_super_ip_size(4, SuperGeneratorSet.ring(l))

    def test_size_validation(self):
        with pytest.raises(ValueError):
            super_ip_size(0, 2)


class TestDegrees:
    """Theorem 3.1: degree ≤ #generators; I-degree ≤ #super-generators."""

    @pytest.mark.parametrize("fam", list(FAMILIES))
    def test_degree_bounded_by_generators(self, fam):
        nuc = hypercube_nucleus(2)
        sgs = FAMILIES[fam](3)
        g = build_super_ip_graph(nuc, sgs)
        assert g.max_degree <= nuc.num_generators + sgs.num_generators

    def test_symmetric_degree_equals_generators(self):
        nuc = hypercube_nucleus(2)
        sgs = SuperGeneratorSet.transpositions(3)
        g = build_super_ip_graph(nuc, sgs, symmetric=True)
        assert g.is_regular()
        assert g.max_degree == nuc.num_generators + sgs.num_generators

    def test_edge_kind_attribution(self):
        nuc = hypercube_nucleus(2)
        g = build_super_ip_graph(nuc, SuperGeneratorSet.transpositions(2))
        kinds = [gen.kind for gen in g.generators]
        assert kinds.count(NUCLEUS) == 2
        assert kinds.count(SUPER) == 1


class TestDiameters:
    @pytest.mark.parametrize("fam", list(FAMILIES))
    @pytest.mark.parametrize(
        "nuc", [hypercube_nucleus(2), complete_nucleus(4), ring_nucleus(4)],
        ids=["Q2", "K4", "C4"],
    )
    def test_theorem_4_1(self, fam, nuc):
        l = 3
        sgs = FAMILIES[fam](l)
        g = build_super_ip_graph(nuc, sgs)
        assert diameter(g) == diameter_formula(nuc.diameter(), sgs)

    @pytest.mark.parametrize("fam", list(FAMILIES))
    def test_theorem_4_3_symmetric(self, fam):
        nuc = hypercube_nucleus(2)
        sgs = FAMILIES[fam](2)
        g = build_super_ip_graph(nuc, sgs, symmetric=True)
        assert diameter(g) == symmetric_diameter_formula(nuc.diameter(), sgs)

    def test_corollary_4_2(self):
        """diameter = (D_G + 1)·log_M N − 1 for the Section-3 families."""
        nuc = hypercube_nucleus(2)
        M, DG = nuc.size(), nuc.diameter()
        for l in (2, 3):
            g = build_super_ip_graph(nuc, SuperGeneratorSet.transpositions(l))
            log_m_n = math.log(g.num_nodes, M)
            assert diameter(g) == round((DG + 1) * log_m_n - 1)

    def test_repeated_symbol_nucleus_builds(self):
        # shuffle-exchange nucleus has repeated symbols: plain variant works
        nuc = shuffle_exchange_nucleus(2)
        g = build_super_ip_graph(nuc, SuperGeneratorSet.ring(2))
        assert g.num_nodes == nuc.size() ** 2

    def test_repeated_symbol_nucleus_rejects_symmetric(self):
        nuc = shuffle_exchange_nucleus(2)
        with pytest.raises(ValueError, match="distinct"):
            build_super_ip_graph(nuc, SuperGeneratorSet.ring(2), symmetric=True)


class TestTheorem44Optimality:
    def test_gh_nucleus_diameter_near_moore_bound(self):
        """Theorem 4.4: with a generalized-hypercube nucleus the super-IP
        diameter is within a small factor of the Moore bound."""
        from repro.metrics.bounds import diameter_optimality_ratio

        nuc = generalized_hypercube_nucleus((4, 4))
        sgs = SuperGeneratorSet.transpositions(3)
        M, DG = nuc.size(), nuc.diameter()
        n_nodes = super_ip_size(M, 3)
        deg = nuc.num_generators + sgs.num_generators
        diam = diameter_formula(DG, sgs)
        assert diameter_optimality_ratio(n_nodes, deg, diam) <= 3.0
