"""Simulator determinism: same workload seed ⇒ identical SimStats, with or
without the observability layer enabled."""

import numpy as np
import pytest

from repro import obs
from repro.networks.classic import hypercube
from repro.sim.simulator import PacketSimulator
from repro.sim.workloads import uniform_random


def _stats_dict(stats) -> dict:
    return dict(stats.__dict__)


def _run(seed: int):
    g = hypercube(4)
    workload = uniform_random(g, rate=0.2, cycles=30, rng=np.random.default_rng(seed))
    return PacketSimulator(g).run(workload), workload


def assert_stats_equal(a, b):
    da, db = _stats_dict(a), _stats_dict(b)
    assert da.keys() == db.keys()
    for key in da:
        va, vb = da[key], db[key]
        if isinstance(va, float) and np.isnan(va):
            assert np.isnan(vb), key
        else:
            assert va == vb, key


class TestDeterminism:
    def test_same_seed_same_stats(self):
        a, wa = _run(seed=42)
        b, wb = _run(seed=42)
        assert wa == wb  # the seeded workload itself is reproducible
        assert a.delivered > 0
        assert_stats_equal(a, b)

    def test_different_seed_different_workload(self):
        _, wa = _run(seed=42)
        _, wb = _run(seed=43)
        assert wa != wb

    def test_profiling_does_not_change_stats(self, tmp_path):
        base, _ = _run(seed=7)
        obs.disable()
        obs.reset()
        obs.enable(trace=str(tmp_path / "sim.jsonl"))
        try:
            profiled, _ = _run(seed=7)
            rep = obs.report()
        finally:
            obs.disable()
            obs.reset()
        assert_stats_equal(base, profiled)
        # and the profiled run actually recorded the sim counters
        assert rep["counters"]["sim.packets_delivered"] == profiled.delivered
        assert rep["values"]["sim.latency"]["count"] == profiled.delivered
        # latency histogram agrees with the stats' own aggregates
        assert rep["values"]["sim.latency"]["max"] == profiled.max_latency
        assert rep["values"]["sim.latency"]["mean"] == pytest.approx(
            profiled.mean_latency
        )
