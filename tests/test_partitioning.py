"""Tests for generic spectral module partitioning."""

import numpy as np
import pytest

from repro import metrics as mt
from repro import networks as nw
from repro.metrics.partitioning import spectral_modules


class TestSpectralModules:
    def test_respects_cap(self):
        for g, cap in [(nw.star_graph(5), 24), (nw.hypercube(6), 8), (nw.ring(30), 5)]:
            ma = spectral_modules(g, cap)
            assert ma.max_module_size <= cap
            assert ma.module_of.shape == (g.num_nodes,)

    def test_ring_split_is_contiguous_arcs(self):
        """On a ring the Fiedler vector orders nodes around the cycle, so
        the parts are arcs — the natural partition."""
        r = nw.ring(16)
        ma = spectral_modules(r, 4)
        assert ma.num_modules == 4
        assert ma.modules_internally_connected()
        assert mt.intercluster_degree(ma) == pytest.approx(2 / 4)

    def test_hypercube_split_near_subcube_quality(self):
        """The hypercube Laplacian's second eigenvalue has multiplicity n,
        so spectral bisection picks an arbitrary dimension mix; it still
        lands within a small factor of the optimal subcube partition."""
        q = nw.hypercube(5)
        spec = spectral_modules(q, 8)
        sub = mt.subcube_modules(q, 3)
        off_spec = mt.offmodule_links_per_node(spec).mean()
        off_sub = mt.offmodule_links_per_node(sub).mean()
        assert off_sub <= off_spec <= 1.6 * off_sub

    def test_intercluster_metrics_usable(self):
        s = nw.star_graph(4)
        ma = spectral_modules(s, 6)
        ic = mt.intercluster_summary(ma)
        assert ic.i_diameter >= 1
        assert ic.i_degree > 0

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            spectral_modules(nw.ring(6), 0)

    def test_single_module_when_cap_big(self):
        g = nw.petersen()
        ma = spectral_modules(g, 100)
        assert ma.num_modules == 1

    def test_fig3_measured_includes_star(self):
        from repro.analysis import fig3_intercluster_measured

        rows = fig3_intercluster_measured()
        stars = [r for r in rows if r["network"].startswith("S")]
        assert stars
        # 4-substar modules on S5: I-degree = n - k = 1
        s5 = next(r for r in stars if r["N"] == 120)
        assert s5["I-degree"] == 1.0
