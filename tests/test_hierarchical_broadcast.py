"""Tests for the module-aware hierarchical broadcast."""

import pytest

from repro import metrics as mt
from repro import networks as nw
from repro.algorithms import broadcast_schedule, schedule_traffic_split
from repro.algorithms.hierarchical import hierarchical_broadcast_schedule


class TestHierarchicalBroadcast:
    @pytest.mark.parametrize("builder,cluster", [
        (lambda: nw.hsn_hypercube(2, 3), mt.nucleus_modules),
        (lambda: nw.hsn_hypercube(3, 2), mt.nucleus_modules),
        (lambda: nw.ring_cn_hypercube(3, 2), mt.nucleus_modules),
        (lambda: nw.hypercube(6), lambda g: mt.subcube_modules(g, 3)),
        (lambda: nw.cube_connected_cycles(3), lambda g: mt.modules_by_key(g, lambda lab: lab[0])),
    ])
    def test_valid_complete_and_optimal_offmodule(self, builder, cluster):
        g = builder()
        ma = cluster(g)
        sched = hierarchical_broadcast_schedule(g, ma)
        sched.validate(g)
        assert sched.total_messages() == g.num_nodes - 1
        _, off = schedule_traffic_split(sched, ma)
        assert off == ma.num_modules - 1  # provably minimum

    def test_beats_generic_on_hypercube(self):
        """On the hypercube the generic BFS broadcast crosses modules 8x
        more often; the hierarchical schedule achieves the minimum."""
        g = nw.hypercube(6)
        ma = mt.subcube_modules(g, 3)
        _, off_h = schedule_traffic_split(hierarchical_broadcast_schedule(g, ma), ma)
        _, off_g = schedule_traffic_split(broadcast_schedule(g), ma)
        assert off_h == 7
        assert off_g > 5 * off_h

    def test_superip_generic_already_optimal(self):
        """The paper's claim quantified: on super-IP graphs even the
        module-oblivious broadcast stays at the off-module minimum."""
        for g in (nw.hsn_hypercube(3, 2), nw.ring_cn_hypercube(3, 2)):
            ma = mt.nucleus_modules(g)
            _, off_g = schedule_traffic_split(broadcast_schedule(g), ma)
            assert off_g == ma.num_modules - 1

    def test_nonzero_root(self):
        g = nw.hsn_hypercube(2, 2)
        ma = mt.nucleus_modules(g)
        sched = hierarchical_broadcast_schedule(g, ma, root=7)
        sched.validate(g)
        assert sched.total_messages() == g.num_nodes - 1

    def test_disconnected_raises(self):
        from repro.core.network import Network

        net = Network.from_edge_list([(i,) for i in range(4)], [(0, 1), (2, 3)])
        ma = mt.ModuleAssignment(net, [0, 0, 1, 1])
        with pytest.raises(ValueError, match="disconnected"):
            hierarchical_broadcast_schedule(net, ma)

    def test_single_module(self):
        g = nw.hypercube(3)
        ma = mt.ModuleAssignment(g, [0] * 8)
        sched = hierarchical_broadcast_schedule(g, ma)
        sched.validate(g)
        _, off = schedule_traffic_split(sched, ma)
        assert off == 0


class TestScheduleMakespan:
    def test_unit_delays(self):
        from repro.algorithms import broadcast_schedule, schedule_makespan

        g = nw.hypercube(4)
        sched = broadcast_schedule(g)
        assert schedule_makespan(sched, g) == sched.num_steps

    def test_slow_offmodule_links_stretch_generic_broadcast(self):
        """With off-module links 10x slower, the hierarchical broadcast's
        makespan beats the generic one on the hypercube (fewer rounds touch
        a slow link)."""
        from repro.algorithms import (
            broadcast_schedule,
            schedule_makespan,
        )
        from repro.algorithms.hierarchical import hierarchical_broadcast_schedule
        from repro.sim import on_off_module_delay

        g = nw.hypercube(6)
        ma = mt.subcube_modules(g, 3)
        delays = on_off_module_delay(g, ma, off_factor=10)
        generic = schedule_makespan(broadcast_schedule(g), g, delays)
        hier = schedule_makespan(hierarchical_broadcast_schedule(g, ma), g, delays)
        assert hier <= generic

    def test_non_edge_rejected(self):
        from repro.algorithms import Schedule, schedule_makespan

        g = nw.ring(5)
        with pytest.raises(ValueError, match="not an edge"):
            schedule_makespan(Schedule([[(0, 2)]]), g)
