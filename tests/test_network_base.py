"""Tests for the Network base container."""

import numpy as np
import pytest

from repro.core.network import Network


def triangle():
    return Network.from_edge_list([(0,), (1,), (2,)], [(0, 1), (1, 2), (2, 0)])


class TestConstruction:
    def test_basic(self):
        n = triangle()
        assert n.num_nodes == 3
        assert n.num_edges() == 3
        assert n.max_degree == n.min_degree == 2

    def test_duplicate_arcs_merged(self):
        n = Network.from_edge_list([(0,), (1,)], [(0, 1), (0, 1), (1, 0)])
        assert n.num_edges() == 1
        assert n.max_degree == 1

    def test_self_loops_dropped(self):
        n = Network.from_edge_list([(0,), (1,)], [(0, 0), (0, 1)])
        assert n.num_edges() == 1
        assert list(n.neighbors(0)) == [1]

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            Network([(0,), (0,)], [0], [1])

    def test_edge_out_of_range(self):
        with pytest.raises(ValueError):
            Network([(0,), (1,)], [0], [5])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Network([(0,), (1,)], [0, 1], [1])

    def test_by_label_edges(self):
        n = Network.from_edge_list(
            ["a", "b", "c"], [("a", "b"), ("b", "c")], by_label=True
        )
        assert n.num_edges() == 2
        assert n.node_of("b") == 1

    def test_numpy_edge_arrays(self):
        n = Network([(0,), (1,), (2,)], np.array([0, 1]), np.array([1, 2]))
        assert n.num_edges() == 2


class TestAccessors:
    def test_label_roundtrip(self):
        n = triangle()
        for i in range(3):
            assert n.node_of(n.label_of(i)) == i

    def test_neighbors_sorted_unique(self):
        n = Network.from_edge_list(
            [(i,) for i in range(4)], [(0, 2), (0, 1), (0, 2), (0, 3)]
        )
        assert n.neighbors(0) == [1, 2, 3]

    def test_degree_histogram(self):
        n = Network.from_edge_list([(i,) for i in range(4)], [(0, 1), (0, 2), (0, 3)])
        assert n.degree_histogram() == {1: 3, 3: 1}

    def test_mean_degree(self):
        n = triangle()
        assert n.mean_degree == 2.0

    def test_is_regular(self):
        assert triangle().is_regular()
        star = Network.from_edge_list([(i,) for i in range(4)], [(0, i) for i in (1, 2, 3)])
        assert not star.is_regular()

    def test_len(self):
        assert len(triangle()) == 3

    def test_repr(self):
        n = triangle()
        assert "N=3" in repr(n)


class TestDirected:
    def test_directed_adjacency(self):
        n = Network([(0,), (1,)], [0], [1], directed=True)
        assert n.neighbors(0) == [1]
        assert n.neighbors(1) == []
        assert n.num_edges() == 1

    def test_directed_override(self):
        n = Network([(0,), (1,)], [0], [1], directed=True)
        sym = n.adjacency_csr(directed=False)
        assert sym[1, 0] == 1 and sym[0, 1] == 1

    def test_to_networkx_directed(self):
        import networkx as nx

        n = Network([(0,), (1,)], [0], [1], directed=True)
        g = n.to_networkx()
        assert isinstance(g, nx.DiGraph)
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_to_networkx_undirected_with_labels(self):
        g = triangle().to_networkx(labels=True)
        assert g.nodes[1]["label"] == (1,)
