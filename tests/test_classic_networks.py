"""Known-parameter tests for every classic network construction."""

import math

import pytest

from repro import networks as nw
from repro.metrics.distances import average_distance, diameter, is_connected


class TestRingsMeshesTori:
    def test_ring(self):
        g = nw.ring(8)
        assert g.num_nodes == 8
        assert g.is_regular() and g.max_degree == 2
        assert diameter(g) == 4

    def test_ring_odd(self):
        assert diameter(nw.ring(7)) == 3

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            nw.ring(2)

    def test_path(self):
        g = nw.path(5)
        assert diameter(g) == 4
        assert g.min_degree == 1

    def test_mesh(self):
        g = nw.mesh([3, 4])
        assert g.num_nodes == 12
        assert diameter(g) == 2 + 3

    def test_torus_2d(self):
        g = nw.torus([4, 4])
        assert g.num_nodes == 16
        assert g.is_regular() and g.max_degree == 4
        assert diameter(g) == 4

    def test_torus_k2_collapses_edges(self):
        # wraparound in a dimension of size 2 duplicates edges
        g = nw.torus([2, 2])
        assert g.max_degree == 2

    def test_kary_ncube(self):
        g = nw.kary_ncube(3, 3)
        assert g.num_nodes == 27
        assert g.max_degree == 6
        assert diameter(g) == 3  # n * floor(k/2)

    def test_complete_graph(self):
        g = nw.complete_graph(6)
        assert g.num_edges() == 15
        assert diameter(g) == 1


class TestHypercubeFamily:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_hypercube(self, n):
        g = nw.hypercube(n)
        assert g.num_nodes == 2**n
        assert g.is_regular() and g.max_degree == n
        assert diameter(g) == n

    def test_hypercube_average_distance(self):
        assert average_distance(nw.hypercube(4), assume_vertex_transitive=True) == pytest.approx(
            4 / 2 * 16 / 15
        )

    @pytest.mark.parametrize("n,diam", [(2, 1), (3, 2), (4, 2), (5, 3), (6, 3)])
    def test_folded_hypercube(self, n, diam):
        g = nw.folded_hypercube(n)
        assert g.num_nodes == 2**n
        assert g.max_degree == n + 1
        assert diameter(g) == diam

    def test_generalized_hypercube(self):
        g = nw.generalized_hypercube([3, 4, 2])
        assert g.num_nodes == 24
        assert g.max_degree == (3 - 1) + (4 - 1) + (2 - 1)
        assert diameter(g) == 3

    def test_gh_binary_is_hypercube(self):
        import networkx as nx

        a = nw.generalized_hypercube([2, 2, 2])
        b = nw.hypercube(3)
        assert nx.is_isomorphic(a.to_networkx(), b.to_networkx())


class TestPermutationNetworks:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_star_graph(self, n):
        g = nw.star_graph(n)
        assert g.num_nodes == math.factorial(n)
        assert g.is_regular() and g.max_degree == n - 1
        assert diameter(g) == (3 * (n - 1)) // 2

    def test_star_smaller_than_hypercube(self):
        """The star graph's selling point: degree and diameter below a
        comparable hypercube."""
        s = nw.star_graph(5)  # 120 nodes
        q = nw.hypercube(7)  # 128 nodes
        assert s.max_degree < q.max_degree
        assert diameter(s) < diameter(q)

    @pytest.mark.parametrize("n,diam", [(2, 1), (3, 3), (4, 4), (5, 5)])
    def test_pancake(self, n, diam):
        g = nw.pancake_graph(n)
        assert g.num_nodes == math.factorial(n)
        assert g.max_degree == n - 1
        assert diameter(g) == diam

    def test_bubble_sort(self):
        g = nw.bubble_sort_graph(4)
        assert g.num_nodes == 24
        assert g.max_degree == 3
        assert diameter(g) == 4 * 3 // 2  # n(n-1)/2


class TestShiftNetworks:
    def test_debruijn_size_degree(self):
        g = nw.debruijn(2, 4)
        assert g.num_nodes == 16
        assert g.max_degree == 4
        assert diameter(g) <= 4

    def test_debruijn_directed(self):
        g = nw.debruijn(2, 3, directed=True)
        assert g.directed
        # every node has out-degree 2 (self-loops at 000/111 removed)
        assert g.max_degree == 2

    def test_debruijn_diameter_directed(self):
        from repro.metrics.distances import eccentricities

        g = nw.debruijn(2, 4, directed=True)
        assert int(eccentricities(g).max()) == 4

    def test_kautz(self):
        g = nw.kautz(2, 3)
        assert g.num_nodes == 3 * 2 * 2  # (d+1)d^{n-1}
        assert is_connected(g)

    def test_shuffle_exchange(self):
        g = nw.shuffle_exchange(3)
        assert g.num_nodes == 8
        assert g.max_degree <= 3
        assert diameter(g) <= 2 * 3 - 1

    def test_shuffle_exchange_diameter_bound(self):
        for n in (3, 4, 5):
            assert diameter(nw.shuffle_exchange(n)) <= 2 * n - 1


class TestCubeDerivatives:
    @pytest.mark.parametrize("n,diam", [(3, 6), (4, 8), (5, 10)])
    def test_ccc(self, n, diam):
        from repro.analysis.formulas import ccc_diameter

        g = nw.cube_connected_cycles(n)
        assert g.num_nodes == n * 2**n
        assert g.is_regular() and g.max_degree == 3
        assert diameter(g) == ccc_diameter(n) == diam

    def test_wrapped_butterfly(self):
        g = nw.wrapped_butterfly(3)
        assert g.num_nodes == 3 * 8
        assert g.max_degree == 4
        assert is_connected(g)


class TestPetersen:
    def test_parameters(self):
        g = nw.petersen()
        assert g.num_nodes == 10
        assert g.is_regular() and g.max_degree == 3
        assert diameter(g) == 2
        assert g.num_edges() == 15

    def test_girth_five(self):
        import networkx as nx

        assert nx.girth(nw.petersen().to_networkx()) == 5

    def test_vertex_transitive_but_not_cayley_nucleus(self):
        from repro.metrics.symmetry import is_vertex_transitive

        assert is_vertex_transitive(nw.petersen())


class TestHCNHFN:
    def test_hcn_size(self):
        g = nw.hcn(3)
        assert g.num_nodes == 64

    def test_hcn_with_diameter_links_degree(self):
        g = nw.hcn(3)
        # every node: n cube links + 1 swap-or-diameter link
        assert g.is_regular() and g.max_degree == 4

    def test_hcn_without_diameter_links(self):
        g = nw.hcn(3, diameter_links=False)
        assert g.max_degree == 4
        assert g.min_degree == 3  # diagonal nodes lack the swap link

    def test_hcn_diameter_links_shrink_diameter(self):
        with_d = diameter(nw.hcn(3))
        without = diameter(nw.hcn(3, diameter_links=False))
        assert with_d <= without

    def test_hfn_size_degree(self):
        g = nw.hfn(3)
        assert g.num_nodes == 64
        assert g.max_degree == 5  # n cube + 1 fold + 1 swap/diameter

    def test_hfn_diameter_below_hcn(self):
        assert diameter(nw.hfn(3)) <= diameter(nw.hcn(3))
