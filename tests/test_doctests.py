"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro
import repro.core.ipgraph
import repro.core.fastclosure


@pytest.mark.parametrize(
    "module",
    [repro, repro.core.ipgraph],
    ids=lambda m: m.__name__,
)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted > 0
