"""Tests for the recursive grid layout subsystem."""

import numpy as np
import pytest

from repro import metrics as mt
from repro import networks as nw
from repro.layout import (
    GridLayout,
    gray_code_layout,
    recursive_module_layout,
    row_major_layout,
)


class TestGridLayout:
    def test_positions_validated(self):
        r = nw.ring(4)
        with pytest.raises(ValueError, match="distinct"):
            GridLayout(r, np.zeros((4, 2), dtype=int))
        with pytest.raises(ValueError):
            GridLayout(r, np.zeros((3, 2), dtype=int))

    def test_ring_row_major(self):
        r = nw.ring(9)
        lay = row_major_layout(r)
        assert lay.bounding_area == 9
        # consecutive ids adjacent except at row breaks and the wrap edge
        w = lay.wire_lengths()
        assert w.min() == 1

    def test_wire_lengths_manhattan(self):
        p = nw.path(3)
        lay = GridLayout(p, np.array([[0, 0], [2, 0], [2, 3]]))
        assert sorted(lay.wire_lengths().tolist()) == [2, 3]
        assert lay.max_wire_length == 3
        assert lay.total_wire_length == 5

    def test_congestion_counts_crossings(self):
        # two nodes far apart joined by one wire: congestion 1
        p = nw.path(2)
        lay = GridLayout(p, np.array([[0, 0], [5, 0]]))
        assert lay.cut_congestion() == 1

    def test_summary_keys(self):
        lay = row_major_layout(nw.hypercube(3))
        s = lay.summary()
        assert {"area", "max wire", "total wire", "congestion"} <= set(s)


class TestGrayCodeLayout:
    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_valid(self, n):
        lay = gray_code_layout(n)
        assert lay.net.num_nodes == 2**n
        assert lay.bounding_area == 2**n  # perfectly packed rectangle

    def test_total_wire_matches_optimal_binary(self):
        """Binary order is total-wire-optimal for 1-D hypercube layouts;
        the Gray relabeling is a bijection per axis, so the totals tie."""
        n = 6
        gray = gray_code_layout(n)
        naive = row_major_layout(nw.hypercube(n))
        assert gray.total_wire_length == naive.total_wire_length

    def test_gray_rows_are_unit_hamiltonian_paths(self):
        """The Gray layout's defining property: horizontally adjacent grid
        positions always hold cube neighbors (a unit-length Hamiltonian
        snake per row) — false for the binary row-major layout."""
        n = 4
        lay = gray_code_layout(n)
        net = lay.net
        pos_of = {tuple(p): i for i, p in enumerate(lay.positions.tolist())}
        csr = net.adjacency_csr()

        def adjacent(u, v):
            return v in csr.indices[csr.indptr[u] : csr.indptr[u + 1]]

        cols = 1 << (n - n // 2)
        rowsn = 1 << (n // 2)
        for y in range(rowsn):
            for x in range(cols - 1):
                u, v = pos_of[(x, y)], pos_of[(x + 1, y)]
                assert adjacent(u, v)
        # the binary layout violates this (e.g. columns 3->4 flip 3 bits)
        naive = row_major_layout(nw.hypercube(n), width=cols)
        npos_of = {tuple(p): i for i, p in enumerate(naive.positions.tolist())}
        violations = 0
        for y in range(rowsn):
            for x in range(cols - 1):
                u, v = npos_of[(x, y)], npos_of[(x + 1, y)]
                if not adjacent(u, v):
                    violations += 1
        assert violations > 0


class TestRecursiveModuleLayout:
    def test_hsn_recursive_layout(self):
        g = nw.hsn_hypercube(2, 3)
        ma = mt.nucleus_modules(g)
        lay = recursive_module_layout(g, ma)
        assert lay.net is g
        s = lay.summary()
        assert s["N"] == 64

    def test_wrong_assignment_rejected(self):
        g = nw.hsn_hypercube(2, 2)
        h = nw.hsn_hypercube(2, 3)
        ma = mt.nucleus_modules(h)
        with pytest.raises(ValueError):
            recursive_module_layout(g, ma)

    def test_intra_module_wires_short(self):
        """The recursive scheme's point: intra-module wires stay within the
        block (length ≤ 2·⌈√M⌉), regardless of network size."""
        import math

        g = nw.hsn_hypercube(2, 3)
        ma = mt.nucleus_modules(g)
        lay = recursive_module_layout(g, ma)
        block = math.ceil(math.sqrt(ma.max_module_size))
        src, dst = lay._edges()
        mod = ma.module_of
        intra = mod[src] == mod[dst]
        w = np.abs(lay.positions[src] - lay.positions[dst]).sum(axis=1)
        assert w[intra].max() <= 2 * block

    def test_recursive_beats_row_major_for_hierarchical(self):
        """Hierarchical networks lay out better with the module scheme."""
        g = nw.hsn_hypercube(2, 3)
        ma = mt.nucleus_modules(g)
        rec = recursive_module_layout(g, ma)
        naive = row_major_layout(g)
        assert rec.total_wire_length <= naive.total_wire_length

    def test_hierarchical_wire_profile(self):
        """§5's economics: most wires short (on-module), few long ones.
        For HSN(2,Q4) at least 80% of wires are intra-module."""
        g = nw.hsn_hypercube(2, 4)
        ma = mt.nucleus_modules(g)
        lay = recursive_module_layout(g, ma)
        src, dst = lay._edges()
        intra = (ma.module_of[src] == ma.module_of[dst]).mean()
        assert intra >= 0.8

    def test_congestion_sane(self):
        g = nw.hsn_hypercube(2, 2)
        ma = mt.nucleus_modules(g)
        lay = recursive_module_layout(g, ma)
        assert lay.cut_congestion() >= 1


class TestLayoutBisectionConsistency:
    def test_median_cut_at_least_bisection(self):
        """A balanced vertical cut of any layout crosses at least the
        bisection width — linking the layout congestion to the §5.1
        bisection metric."""
        from repro.metrics.bisection import exact_bisection_width

        for g in (nw.hypercube(4), nw.ring(16)):
            lay = row_major_layout(g, width=4)
            bw = exact_bisection_width(g)
            assert lay.cut_congestion() >= bw
