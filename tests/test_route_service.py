"""Tests for the route-serving layer (repro.serve) and the NextHopTable
query-path hardening that shipped with it: batched-vs-scalar bit-identity,
mmap round-trips and shard routing, multi-worker shared-table determinism,
and the id/chunk/shape validation bugfixes pinned by exact message.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import cache, networks, obs
from repro.cache import cached_next_hop_table
from repro.core.network import Network, RoutingError
from repro.routing.table import NextHopTable
from repro.serve import (
    ResolveBatch,
    RouteService,
    ServiceSpec,
    merge_batches,
    parallel_resolve,
    run_load_test,
    seeded_queries,
    shard_row_starts,
    verify_against_scalar,
    worker_backends,
)


@pytest.fixture()
def disk_cache(tmp_path):
    """A fresh artifact cache installed as the process default
    (``min_nodes=1`` so the tiny test instances are cached too)."""
    store = cache.configure(tmp_path / "cache", min_nodes=1)
    try:
        yield store
    finally:
        cache.set_cache(None)


@pytest.fixture()
def counters():
    """Enabled obs registry; yields a callable returning current counters."""
    obs.reset()
    obs.enable()
    try:
        yield lambda: dict(obs.report()["counters"])
    finally:
        obs.disable()
        obs.reset()


def _split_graph() -> Network:
    """Two components (0-1 and 2-3) for unreachable-pair tests."""
    return Network.from_edge_list(
        [(i,) for i in range(4)], [(0, 1), (2, 3)], name="split"
    )


# ----------------------------------------------------------------------
# NextHopTable query-path hardening (the bugfix satellites)
# ----------------------------------------------------------------------
def test_query_rejects_out_of_range_ids_exact_message():
    t = NextHopTable(networks.ring(8), with_distances=True)
    with pytest.raises(
        ValueError,
        match=r"source node id -1 is out of range for 'ring\(8\)' \(valid ids: 0\.\.7\)",
    ):
        t.next_hop(-1, 3)
    with pytest.raises(
        ValueError,
        match=r"destination node id 8 is out of range for 'ring\(8\)' \(valid ids: 0\.\.7\)",
    ):
        t.next_hop(0, 8)


def test_all_query_methods_validate_both_roles():
    t = NextHopTable(networks.ring(8), with_distances=True)
    for fn in (t.next_hop, t.distance, t.next_hops, t.path):
        with pytest.raises(ValueError, match="source node id -1 is out of range"):
            fn(-1, 0)
        with pytest.raises(ValueError, match="destination node id 99 is out of range"):
            fn(0, 99)
    # valid queries still behave
    assert t.next_hop(0, 2) == 1
    assert t.distance(0, 4) == 4
    assert t.path(0, 2) == [0, 1, 2]
    assert t.next_hops(0, 4) == [1, 7]


def test_negative_id_no_longer_wraps_around():
    # the old behavior: table[-1, ...] silently read node n-1's row
    t = NextHopTable(networks.ring(8))
    with pytest.raises(ValueError, match="out of range"):
        t.path(2, -1)


def test_nonpositive_chunk_rejected_exact_message():
    g = networks.ring(8)
    with pytest.raises(
        ValueError, match="chunk must be a positive BFS batch size, got -1"
    ):
        NextHopTable(g, chunk=-1)
    with pytest.raises(
        ValueError, match="chunk must be a positive BFS batch size, got 0"
    ):
        NextHopTable(g, chunk=0)
    # chunk=1 is the smallest legal batch and must build a correct table
    assert np.array_equal(NextHopTable(g, chunk=1).table, NextHopTable(g).table)


def test_from_arrays_validates_dist_shape_exact_message():
    g = networks.ring(8)
    t = NextHopTable(g, with_distances=True)
    with pytest.raises(
        ValueError,
        match=r"distance matrix shape \(4, 4\) does not match 'ring\(8\)' \(8 nodes\)",
    ):
        NextHopTable.from_arrays(g, t.table, dist=np.zeros((4, 4), dtype=np.int32))
    # a matching dist still round-trips
    rt = NextHopTable.from_arrays(g, t.table, dist=t.dist)
    assert rt.distance(0, 4) == 4


def test_cached_table_hit_restores_usable_dist(disk_cache):
    g = networks.build("hypercube", n=4)
    t1 = cached_next_hop_table(g, with_distances=True)
    t2 = cached_next_hop_table(g, with_distances=True)  # cache hit
    ref = NextHopTable(g, with_distances=True)
    for u, dst in [(0, 15), (3, 12), (7, 7)]:
        assert t2.distance(u, dst) == ref.distance(u, dst)
        assert t2.next_hops(u, dst) == ref.next_hops(u, dst)
    assert np.array_equal(t1.dist, t2.dist)


def test_cached_table_miss_materializes_arrays_once(disk_cache, monkeypatch):
    calls = []
    orig = NextHopTable.to_arrays

    def counting(self):
        calls.append(1)
        return orig(self)

    monkeypatch.setattr(NextHopTable, "to_arrays", counting)
    obs.reset()
    obs.enable()  # artifact sink active: the old code called to_arrays twice
    try:
        g = networks.build("hypercube", n=4)
        cached_next_hop_table(g, with_distances=True)
    finally:
        obs.disable()
        obs.reset()
    assert len(calls) == 1


# ----------------------------------------------------------------------
# RouteService: batched vs scalar bit-identity
# ----------------------------------------------------------------------
FUZZ_NETS = [
    ("ring", dict(n=17)),
    ("hypercube", dict(n=5)),
    ("hsn_hypercube", dict(l=2, n=3)),
]


@pytest.mark.parametrize("family,params", FUZZ_NETS)
def test_resolve_bit_identical_to_scalar_walk(family, params):
    net = getattr(networks, family)(**params)
    table = NextHopTable(net, with_distances=True)
    svc = RouteService.from_table(table)
    src, dst = seeded_queries(net.num_nodes, 400, seed=11)
    batch = svc.resolve(src, dst, paths=True)
    assert len(batch) == 400
    for i in range(len(batch)):
        s, d = int(src[i]), int(dst[i])
        assert batch.path_list(i) == table.path(s, d)
        assert int(batch.distance[i]) == table.distance(s, d)
        expect_hop = d if s == d else table.next_hop(s, d)
        assert int(batch.next_hop[i]) == expect_hop


def test_verify_against_scalar_helper_counts(disk_cache):
    net = networks.build("hypercube", n=4)
    table = cached_next_hop_table(net, with_distances=True)
    svc = RouteService.open(net)
    src, dst = seeded_queries(net.num_nodes, 500, seed=2)
    checked, mismatches = verify_against_scalar(svc, table, src, dst, sample=100)
    assert checked == 100
    assert mismatches == 0


def test_resolve_without_stored_distances_walks_table():
    net = networks.hypercube(4)
    table = NextHopTable(net)  # no dist matrix
    svc = RouteService.from_table(table)
    assert not svc.has_distances
    ref = NextHopTable(net, with_distances=True)
    src, dst = seeded_queries(net.num_nodes, 200, seed=5)
    got = svc.distances(src, dst)
    want = np.array([ref.distance(int(s), int(d)) for s, d in zip(src, dst)])
    assert np.array_equal(got, want)


def test_resolve_validates_ids_and_lengths():
    svc = RouteService.from_table(NextHopTable(networks.ring(8)))
    with pytest.raises(
        ValueError,
        match=r"source node id -3 at position 1 is out of range for "
        r"'ring\(8\)' \(valid ids: 0\.\.7\)",
    ):
        svc.resolve([0, -3, 2], [1, 1, 1])
    with pytest.raises(
        ValueError, match="destination node id 8 at position 0 is out of range"
    ):
        svc.resolve([0], [8])
    with pytest.raises(ValueError, match="same length"):
        svc.resolve([0, 1], [2])


def test_resolve_unreachable_raises_routing_error():
    net = _split_graph()
    table = NextHopTable(net, with_distances=True, allow_unreachable=True)
    svc = RouteService.from_table(table)
    ok = svc.resolve([0, 2], [1, 3], paths=True)
    assert ok.path_lists() == [[0, 1], [2, 3]]
    with pytest.raises(
        RoutingError, match=r"no route from node 0 to node 3 in 'split'"
    ):
        svc.resolve([1, 0], [0, 3])


def test_resolve_batch_path_helpers():
    svc = RouteService.from_table(NextHopTable(networks.ring(6), with_distances=True))
    batch = svc.resolve([2, 4], [2, 1], paths=True)
    assert batch.path_list(0) == [2]
    assert batch.path_list(1) == [4, 3, 2, 1]  # smallest-id tie-break
    no_paths = svc.resolve([0], [1])
    with pytest.raises(ValueError, match="without paths=True"):
        no_paths.path_list(0)


# ----------------------------------------------------------------------
# mmap round-trip and sharding
# ----------------------------------------------------------------------
def test_open_is_mmap_backed_and_round_trips(disk_cache, counters):
    net = networks.build("hsn", l=2, n=3)
    svc = RouteService.open(net)
    assert svc.source == "mmap"
    assert svc.mmap_backed  # every block is an np.memmap view
    assert counters().get("serve.open.mmap", 0) == 1
    # a second open maps the same spills without rebuilding
    before = counters().get("routing.table.builds", 0)
    svc2 = RouteService.open(net)
    assert svc2.mmap_backed
    assert counters().get("routing.table.builds", 0) == before
    src, dst = seeded_queries(net.num_nodes, 300, seed=1)
    a, b = svc.resolve(src, dst, paths=True), svc2.resolve(src, dst, paths=True)
    assert np.array_equal(a.next_hop, b.next_hop)
    assert np.array_equal(a.distance, b.distance)
    assert np.array_equal(a.paths, b.paths)


def test_open_without_cache_falls_back_to_memory(counters):
    assert cache.get_cache() is None
    svc = RouteService.open(networks.hypercube(4))
    assert svc.source == "memory"
    assert not svc.mmap_backed
    assert counters().get("serve.open.memory", 0) == 1
    with pytest.raises(ValueError, match="not mmap-backed"):
        svc.spec()


def test_shard_row_starts_partitions():
    assert shard_row_starts(10, 1) == (0, 10)
    assert shard_row_starts(10, 4) == (0, 2, 5, 7, 10)
    assert shard_row_starts(3, 3) == (0, 1, 2, 3)
    with pytest.raises(ValueError, match="shards must be >= 1, got 0"):
        shard_row_starts(10, 0)


def test_shard_row_starts_rejects_more_shards_than_rows_exact_message():
    # the old behavior silently clamped 8 shards to 3, hiding the
    # misconfiguration (and producing fewer spills than requested)
    with pytest.raises(
        ValueError,
        match=r"shards must be <= num_nodes \(3\), got 8: more shards than "
        r"dst rows would create empty shard blocks",
    ):
        shard_row_starts(3, 8)
    with pytest.raises(ValueError, match=r"shards must be <= num_nodes \(0\), got 1"):
        shard_row_starts(0, 1)


def test_resolve_rejects_empty_queries_exact_message():
    svc = RouteService.from_table(NextHopTable(networks.ring(8)))
    with pytest.raises(
        ValueError,
        match=r"source ids are empty: resolve\(\) requires at least one query",
    ):
        svc.resolve([], [])
    with pytest.raises(
        ValueError,
        match=r"destination ids are empty: resolve\(\) requires at least one query",
    ):
        svc.resolve([0], np.empty(0, dtype=np.int64))
    with pytest.raises(ValueError, match="source ids are empty"):
        svc.distances([], [0])


@pytest.mark.parametrize("shards", [2, 3, 5])
def test_sharded_resolve_matches_unsharded(disk_cache, shards):
    net = networks.build("hsn", l=2, n=3)
    flat = RouteService.open(net)
    sharded = RouteService.open(net, shards=shards)
    assert sharded.shards == shards
    assert sharded.mmap_backed
    src, dst = seeded_queries(net.num_nodes, 500, seed=3)
    a = flat.resolve(src, dst, paths=True)
    b = sharded.resolve(src, dst, paths=True)
    assert np.array_equal(a.next_hop, b.next_hop)
    assert np.array_equal(a.distance, b.distance)
    assert np.array_equal(a.paths, b.paths)


def test_spec_round_trip_reopens_mmap(disk_cache):
    net = networks.build("hypercube", n=5)
    svc = RouteService.open(net, shards=2)
    spec = svc.spec()
    assert isinstance(spec, ServiceSpec)
    assert spec.num_nodes == 32 and len(spec.table_paths) == 2
    clone = RouteService.from_spec(spec)
    assert clone.mmap_backed
    src, dst = seeded_queries(net.num_nodes, 200, seed=9)
    a, b = svc.resolve(src, dst), clone.resolve(src, dst)
    assert np.array_equal(a.next_hop, b.next_hop)
    assert np.array_equal(a.distance, b.distance)


def test_corrupt_spill_falls_back_to_memory(disk_cache, counters):
    net = networks.build("hypercube", n=4)
    RouteService.open(net)  # writes the spills
    for spill in disk_cache.root.glob("*/*.npy"):
        spill.write_bytes(b"garbage")
    svc = RouteService.open(net)
    assert svc.source == "memory"
    assert counters().get("cache.error", 0) >= 1
    ref = NextHopTable(net, with_distances=True)
    src, dst = seeded_queries(net.num_nodes, 100, seed=0)
    want = np.array([ref.distance(int(s), int(d)) for s, d in zip(src, dst)])
    assert np.array_equal(svc.distances(src, dst), want)


def test_load_mmap_arrays_are_read_only(disk_cache):
    from repro.cache import cache_key

    key = cache_key("serve.shard.test", probe=1)
    disk_cache.export_mmap(key, {"table": np.arange(12, dtype=np.int32)})
    arr = disk_cache.load_mmap(key, "table")
    assert isinstance(arr, np.memmap)
    assert arr.flags.writeable is False
    with pytest.raises(ValueError, match="read-only"):
        arr[0] = 99


def test_from_spec_blocks_are_read_only_and_resolve_never_copies(disk_cache):
    net = networks.build("hypercube", n=5)
    spec = RouteService.open(net, shards=2).spec()
    svc = RouteService.from_spec(spec)
    blocks = svc._blocks + (svc._dist_blocks or [])
    for b in blocks:
        assert isinstance(b, np.memmap)
        assert b.flags.writeable is False
        with pytest.raises(ValueError, match="read-only"):
            b[0, 0] = 1
    # a full resolve (gathers + path materialization) must not trigger a
    # copy-on-write of any shard: the same read-only memmaps stay in place
    src, dst = seeded_queries(net.num_nodes, 500, seed=6)
    svc.resolve(src, dst, paths=True)
    for before, after in zip(blocks, svc._blocks + (svc._dist_blocks or [])):
        assert after is before
        assert isinstance(after, np.memmap)
        assert after.flags.writeable is False


def test_cache_clear_removes_spills(disk_cache):
    net = networks.build("hypercube", n=4)
    RouteService.open(net)
    assert list(disk_cache.root.glob("*/*.npy"))
    disk_cache.clear()
    assert not list(disk_cache.root.glob("*/*.npy"))


# ----------------------------------------------------------------------
# multi-worker shared-table determinism
# ----------------------------------------------------------------------
def test_parallel_resolve_bit_identical_at_jobs_4(disk_cache):
    net = networks.build("hsn", l=2, n=3)
    svc = RouteService.open(net, shards=2)
    src, dst = seeded_queries(net.num_nodes, 2_000, seed=4)
    serial = parallel_resolve(svc, src, dst, jobs=1, batch=300, paths=True)
    fanned = parallel_resolve(svc, src, dst, jobs=4, batch=300, paths=True)
    assert np.array_equal(serial.next_hop, fanned.next_hop)
    assert np.array_equal(serial.distance, fanned.distance)
    assert np.array_equal(serial.paths, fanned.paths)
    assert np.array_equal(serial.src, src) and np.array_equal(serial.dst, dst)


def test_workers_share_table_via_mmap(disk_cache):
    net = networks.build("hypercube", n=5)
    svc = RouteService.open(net, shards=2)
    probes = worker_backends(svc, jobs=4)
    assert probes  # at least one worker answered
    assert all(p == {"mmap": True, "shards": 2} for p in probes)


def test_parallel_resolve_requires_spec_for_fanout():
    svc = RouteService.from_table(NextHopTable(networks.ring(8)))
    # serial path never needs a spec
    out = parallel_resolve(svc, [0, 1], [4, 5], jobs=1)
    assert out.distance.tolist() == [4, 4]
    with pytest.raises(ValueError, match="not mmap-backed"):
        parallel_resolve(svc, list(range(8)), list(range(8)), jobs=2, batch=2)


def test_merge_batches_validates_and_pads():
    with pytest.raises(ValueError, match="empty batch list"):
        merge_batches([])
    svc = RouteService.from_table(NextHopTable(networks.ring(8)))
    a = svc.resolve([0], [1], paths=True)  # width 2
    b = svc.resolve([0], [4], paths=True)  # width 5
    merged = merge_batches([a, b])
    assert isinstance(merged, ResolveBatch)
    assert merged.paths.shape == (2, 5)
    assert merged.path_lists() == [[0, 1], [0, 1, 2, 3, 4]]


# ----------------------------------------------------------------------
# load harness + CLI
# ----------------------------------------------------------------------
def test_run_load_test_report(disk_cache):
    net = networks.build("hypercube", n=4)
    table = cached_next_hop_table(net, with_distances=True)
    svc = RouteService.open(net)
    rep = run_load_test(
        svc, table, queries=2_000, batch=500, seed=0, verify_sample=200
    )
    assert rep["queries"] == 2_000 and rep["batches"] == 4
    assert rep["mmap"] is True and rep["backend"] == "mmap"
    assert rep["verified"] == 200 and rep["mismatches"] == 0
    assert rep["qps"] > 0 and rep["p99_ms"] >= rep["p50_ms"] >= 0


def test_seeded_queries_are_deterministic():
    a_src, a_dst = seeded_queries(32, 100, seed=7)
    b_src, b_dst = seeded_queries(32, 100, seed=7)
    c_src, c_dst = seeded_queries(32, 100, seed=8)
    assert np.array_equal(a_src, b_src) and np.array_equal(a_dst, b_dst)
    assert not (np.array_equal(a_src, c_src) and np.array_equal(a_dst, c_dst))
    assert a_src.min() >= 0 and a_src.max() < 32


def test_cli_serve_bench_smoke(tmp_path, capsys):
    from repro.__main__ import main

    d = str(tmp_path / "c")
    try:
        rc = main(
            ["serve", "bench", "--network", "hypercube", "--param", "n=4",
             "--cache-dir", d, "--queries", "2000", "--batch", "500",
             "--verify-sample", "200"]
        )
    finally:
        cache.set_cache(None)
    assert rc == 0
    out = capsys.readouterr().out
    assert '"mismatches": 0' in out
    assert '"backend": "mmap"' in out


def test_cli_serve_query(capsys):
    from repro.__main__ import main

    assert main(
        ["serve", "query", "--network", "ring", "--param", "n=8",
         "--src", "0", "--dst", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "0 -> 3" in out and "[0, 1, 2, 3]" in out


def test_cli_serve_bench_jobs_requires_cache():
    from repro.__main__ import main

    with pytest.raises(SystemExit, match="--cache-dir"):
        main(
            ["serve", "bench", "--network", "ring", "--param", "n=8",
             "--jobs", "2", "--queries", "100", "--batch", "50"]
        )
