"""Tests for repro.metrics.fault.random_fault_experiment."""

import numpy as np
import pytest

from repro import networks as nw
from repro.metrics.distances import diameter
from repro.metrics.fault import FaultReport, random_fault_experiment


def _report_tuple(r: FaultReport):
    return (
        r.faults,
        r.trials,
        r.connected_fraction,
        r.mean_largest_component,
        r.mean_surviving_diameter,
    )


class TestSeededDeterminism:
    def test_same_seed_same_report(self):
        g = nw.hypercube(4)
        r1 = random_fault_experiment(g, 3, 10, np.random.default_rng(42))
        r2 = random_fault_experiment(g, 3, 10, np.random.default_rng(42))
        assert _report_tuple(r1) == _report_tuple(r2)

    def test_different_seeds_can_differ(self):
        # ring(12) with 2 faults disconnects unless the faults are adjacent,
        # so distinct seeds essentially always produce distinct fault sets
        g = nw.ring(12)
        reports = {
            _report_tuple(random_fault_experiment(g, 2, 8, np.random.default_rng(s)))
            for s in range(6)
        }
        assert len(reports) > 1


class TestZeroFaultsNoop:
    @pytest.mark.parametrize("builder,args", [
        (nw.hypercube, (3,)),
        (nw.ring, (10,)),
        (nw.cube_connected_cycles, (3,)),
    ])
    def test_zero_faults_reports_intact_network(self, builder, args):
        g = builder(*args)
        r = random_fault_experiment(g, 0, 4, np.random.default_rng(0))
        assert r.faults == 0
        assert r.connected_fraction == 1.0
        assert r.mean_largest_component == g.num_nodes
        assert r.mean_surviving_diameter == diameter(g)


class TestBruteForceAgreement:
    def _survivor_stats(self, g, dead):
        """BFS-based recomputation of component structure, no networkx."""
        alive = [v for v in range(g.num_nodes) if v not in dead]
        alive_set = set(alive)
        seen: set[int] = set()
        comps = []
        for s in alive:
            if s in seen:
                continue
            comp = {s}
            frontier = [s]
            while frontier:
                nxt = []
                for u in frontier:
                    for v in g.neighbors(u):
                        v = int(v)
                        if v in alive_set and v not in comp:
                            comp.add(v)
                            nxt.append(v)
                frontier = nxt
            seen |= comp
            comps.append(comp)
        return len(comps), max(len(c) for c in comps)

    @pytest.mark.parametrize("builder,args,faults", [
        (nw.ring, (8,), 2),
        (nw.hypercube, (3,), 2),
        (nw.star_graph, (3,), 1),
    ])
    def test_connectivity_agrees_with_bruteforce(self, builder, args, faults):
        g = builder(*args)
        trials = 12
        # replay the experiment's own fault draws with an identical rng
        r = random_fault_experiment(g, faults, trials, np.random.default_rng(9))
        rng = np.random.default_rng(9)
        connected = 0
        largest = []
        for _ in range(trials):
            dead = set(rng.choice(g.num_nodes, size=faults, replace=False).tolist())
            ncomp, big = self._survivor_stats(g, dead)
            connected += ncomp == 1
            largest.append(big)
        assert r.connected_fraction == connected / trials
        assert r.mean_largest_component == pytest.approx(np.mean(largest))


class TestValidation:
    def test_faulting_every_node_rejected(self):
        with pytest.raises(ValueError, match="every node"):
            random_fault_experiment(nw.ring(4), 4, 1, np.random.default_rng(0))
