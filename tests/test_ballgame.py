"""Tests for the ball-arrangement game (Section 2's intuition layer)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ballgame import BallArrangementGame, solve_bfs, solve_bidirectional
from repro.core.permutation import (
    cyclic_shift_left,
    from_cycles,
    transposition,
)
from repro.metrics.distances import single_source_distances


def star_game(n):
    return BallArrangementGame(
        tuple(range(n)), [transposition(n, 0, i) for i in range(1, n)]
    )


class TestGameBasics:
    def test_num_balls_moves(self):
        g = star_game(4)
        assert g.num_balls == 4
        assert g.num_moves == 3

    def test_play(self):
        g = star_game(3)
        assert g.play((0, 1, 2), 0) == (1, 0, 2)
        assert g.play((0, 1, 2), 1) == (2, 1, 0)

    def test_play_sequence(self):
        g = star_game(3)
        out = g.play_sequence((0, 1, 2), [0, 1, 0])
        expected = (0, 1, 2)
        for m in [0, 1, 0]:
            expected = g.play(expected, m)
        assert out == expected

    def test_requires_moves(self):
        with pytest.raises(ValueError):
            BallArrangementGame((0, 1), [])

    def test_move_size_mismatch(self):
        with pytest.raises(ValueError):
            BallArrangementGame((0, 1, 2), [transposition(2, 0, 1)])

    def test_reachable_equals_state_graph(self):
        g = star_game(4)
        assert g.reachable() == set(g.state_graph().labels)
        assert len(g.reachable()) == 24

    def test_repeated_numbers_shrink_state_space(self):
        # two identical balls halve the space
        g = BallArrangementGame((0, 0, 1), [transposition(3, 0, 1), transposition(3, 0, 2)])
        assert len(g.reachable()) == 3


class TestSolvers:
    def test_trivial(self):
        g = star_game(3)
        assert g.solve((0, 1, 2)) == []

    def test_one_move(self):
        g = star_game(3)
        sol = g.solve((1, 0, 2))
        assert sol == [0]

    def test_unreachable_returns_none(self):
        # only a 3-rotation: odd permutations unreachable
        g = BallArrangementGame((0, 1, 2), [from_cycles(3, [(0, 1, 2)])])
        assert g.solve((1, 0, 2)) is None
        assert not g.is_solvable((1, 0, 2))

    def test_rotation_reachable(self):
        g = BallArrangementGame((0, 1, 2), [from_cycles(3, [(0, 1, 2)])])
        sol = g.solve((2, 0, 1))
        assert sol is not None
        assert g.play_sequence(g.start, sol) == (2, 0, 1)

    def test_solution_reaches_goal(self):
        g = star_game(5)
        goal = (4, 3, 2, 1, 0)
        sol = g.solve(goal)
        assert g.play_sequence(g.start, sol) == goal

    def test_bfs_and_bidirectional_agree_on_length(self):
        g = star_game(4)
        for goal in g.reachable():
            a = solve_bfs(g, g.start, goal)
            b = solve_bidirectional(g, g.start, goal)
            assert len(a) == len(b)
            assert g.play_sequence(g.start, a) == goal
            assert g.play_sequence(g.start, b) == goal

    def test_solution_length_is_graph_distance(self):
        """Playing the game optimally = shortest-path routing (Section 2)."""
        g = star_game(4)
        graph = g.state_graph()
        dist = single_source_distances(graph, 0)
        for node, lab in enumerate(graph.labels):
            sol = solve_bidirectional(g, g.start, lab)
            assert len(sol) == dist[node]

    def test_solve_with_custom_start(self):
        g = star_game(4)
        start = (3, 2, 1, 0)
        goal = (0, 1, 2, 3)
        sol = g.solve(goal, start=start)
        assert g.play_sequence(start, sol) == goal

    def test_max_states_guard(self):
        g = star_game(8)
        with pytest.raises(ValueError):
            solve_bfs(g, g.start, tuple(reversed(range(8))), max_states=10)

    @settings(max_examples=25, deadline=None)
    @given(st.permutations(list(range(5))))
    def test_random_goals_solved_optimally(self, goal):
        g = star_game(5)
        goal = tuple(goal)
        sol = solve_bidirectional(g, g.start, goal)
        assert g.play_sequence(g.start, sol) == goal
        # star graph diameter bound: floor(3(n-1)/2) = 6
        assert len(sol) <= 6

    def test_hcn_game(self):
        """The HCN ball game: two boxes of pair-encoded bits."""
        moves = [
            from_cycles(8, [(0, 1)]),
            from_cycles(8, [(2, 3)]),
            cyclic_shift_left(8, 4),
        ]
        g = BallArrangementGame((0, 1, 2, 3, 0, 1, 2, 3), moves)
        assert len(g.reachable()) == 16
