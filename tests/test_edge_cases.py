"""Edge-case coverage across subsystems."""

import numpy as np
import pytest

from repro import metrics as mt
from repro import networks as nw
from repro.analysis.report import format_value
from repro.core.network import Network
from repro.sim import PacketSimulator
from repro.sim.stats import SimStats


class TestSimStatsEdges:
    def test_all_undelivered(self):
        r = nw.ring(10)
        sim = PacketSimulator(r, delays=100)
        stats = sim.run([(0, 0, 5)], max_cycles=1)
        assert stats.delivered == 0
        assert stats.undelivered == 1
        assert stats.max_latency == -1
        assert np.isnan(stats.mean_latency)

    def test_empty_run(self):
        r = nw.ring(5)
        stats = PacketSimulator(r).run([])
        assert stats.delivered == 0
        assert stats.horizon == 1

    def test_repr(self):
        r = nw.ring(5)
        stats = PacketSimulator(r).run([(0, 0, 2)])
        assert "SimStats" in repr(stats)

    def test_no_module_info_gives_nan_utilizations(self):
        r = nw.ring(5)
        stats = PacketSimulator(r).run([(0, 0, 2)])
        assert np.isnan(stats.mean_off_utilization)


class TestNetworkAdjacencyCache:
    def test_directed_override_not_cached_as_default(self):
        n = Network([(0,), (1,)], [0], [1], directed=False)
        sym = n.adjacency_csr()
        directed = n.adjacency_csr(directed=True)
        assert sym.nnz == 2 and directed.nnz == 1
        # the default view stays symmetric after the override call
        assert n.adjacency_csr().nnz == 2

    def test_empty_edge_network(self):
        n = Network([(0,), (1,)], [], [])
        assert n.num_edges() == 0
        assert n.degrees().sum() == 0


class TestReportFormatting:
    def test_large_float_scientific(self):
        assert "e" in format_value(1.23456e9) or "+" in format_value(1.23456e9)

    def test_integer_passthrough(self):
        assert format_value(10**9) == str(10**9)


class TestBisectionTinyGraphs:
    def test_fiedler_tiny(self):
        from repro.metrics.bisection import fiedler_bisection

        p = nw.path(3)
        cut, side = fiedler_bisection(p)
        assert side.sum() == 1
        assert cut >= 1

    def test_exact_two_nodes(self):
        from repro.metrics.bisection import exact_bisection_width

        n = Network.from_edge_list([(0,), (1,)], [(0, 1)])
        assert exact_bisection_width(n) == 1


class TestLayoutTiny:
    def test_gray_layout_n1(self):
        from repro.layout import gray_code_layout

        lay = gray_code_layout(1)
        assert lay.net.num_nodes == 2
        assert lay.max_wire_length == 1

    def test_recursive_layout_single_module(self):
        from repro.layout import recursive_module_layout

        g = nw.hypercube(2)
        ma = mt.ModuleAssignment(g, [0, 0, 0, 0])
        lay = recursive_module_layout(g, ma)
        assert lay.bounding_area == 4


class TestBallgameBackwardExpansion:
    def test_bidirectional_expands_smaller_side(self):
        """Force the backward frontier to expand by giving the goal fewer
        moves from its side (asymmetric move sets still route correctly
        because inverses are used)."""
        from repro.core.ballgame import BallArrangementGame, solve_bidirectional
        from repro.core.permutation import cyclic_shift_left

        game = BallArrangementGame((0, 1, 2, 3), [cyclic_shift_left(4, 1)])
        sol = solve_bidirectional(game, (0, 1, 2, 3), (3, 0, 1, 2))
        assert sol is not None
        assert game.play_sequence((0, 1, 2, 3), sol) == (3, 0, 1, 2)


class TestNucleusSpecCaching:
    def test_size_and_diameter_cached_consistent(self):
        nuc = nw.hypercube_nucleus(3)
        assert nuc.size() == nuc.size() == 8
        assert nuc.diameter() == 3

    def test_specs_hashable_and_equal(self):
        a = nw.hypercube_nucleus(2)
        b = nw.hypercube_nucleus(2)
        assert a == b
        assert hash(a) == hash(b)


class TestCLIInfoIPWithoutSupergens:
    def test_info_on_pure_nucleus_graph(self, capsys):
        from repro.__main__ import main

        assert main(["info", "hypercube_ip", "--param", "n=3"]) == 0
        out = capsys.readouterr().out
        assert "Q3" in out
