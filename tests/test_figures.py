"""Tests for the figure-regeneration harness: the paper's qualitative
claims (who wins, by roughly what factor) must hold in our data."""

import math

import pytest

from repro.analysis import (
    fig2_dd_cost,
    fig3_intercluster,
    fig3_intercluster_measured,
    fig4_id_cost,
    fig5_ii_cost,
    render_table,
    sec53_offmodule_table,
)


@pytest.fixture(scope="module")
def fig2():
    return fig2_dd_cost(20)


@pytest.fixture(scope="module")
def fig3():
    return fig3_intercluster(max_l=4)


@pytest.fixture(scope="module")
def fig45():
    return fig5_ii_cost(20)


def closest(rows, family, n, key="DD-cost"):
    """Row of the given family (exact name) closest in size to n."""
    cand = [r for r in rows if r["network"] == family]
    assert cand, f"no rows for {family}"
    return min(cand, key=lambda r: abs(math.log2(r["N"]) - math.log2(n)))


class TestFig2Shape:
    def test_nonempty_and_wellformed(self, fig2):
        assert len(fig2) > 80
        for r in fig2:
            assert r["DD-cost"] == r["degree"] * r["diameter"]
            assert r["N"] >= 6

    def test_cn_beats_hypercube(self, fig2):
        """'cyclic-shift networks ... outperform other popular topologies
        significantly under this criterion, especially when the network
        size is large'."""
        for n in (2**12, 2**16, 2**20):
            cn = closest(fig2, "ring-CN(l,Q4)", n)
            hc = closest(fig2, "hypercube", n)
            assert cn["DD-cost"] < hc["DD-cost"]

    def test_cn_beats_ring_and_torus_massively(self, fig2):
        cn = closest(fig2, "ring-CN(l,Q4)", 2**16)
        ring = closest(fig2, "ring", 2**16)
        torus_rows = [r for r in fig2 if r["network"].endswith("-ary-2-cube")]
        torus = min(torus_rows, key=lambda r: abs(math.log2(r["N"]) - 16))
        assert cn["DD-cost"] * 10 < ring["DD-cost"]
        assert cn["DD-cost"] * 2 < torus["DD-cost"]

    def test_cn_comparable_to_star(self, fig2):
        """'cyclic-shift networks have DD-cost that is comparable to that of
        the star graph'."""
        for n in (2**12, 2**16):
            cn = closest(fig2, "ring-CN(l,Q4)", n)
            star = closest(fig2, "star", n)
            assert cn["DD-cost"] <= 2.5 * star["DD-cost"]
            assert star["DD-cost"] <= 2.5 * cn["DD-cost"]

    def test_hcn_beats_comparable_hypercube(self, fig2):
        for n in (2**10, 2**14):
            hcn = closest(fig2, "HCN(n,n)", n)
            hc = closest(fig2, "hypercube", n)
            assert hcn["DD-cost"] <= hc["DD-cost"]

    def test_monotone_growth_within_family(self, fig2):
        fams = {}
        for r in fig2:
            fams.setdefault(r["network"], []).append(r)
        for rows in fams.values():
            rows.sort(key=lambda r: r["N"])
            dd = [r["DD-cost"] for r in rows]
            assert dd == sorted(dd)


class TestFig3Shape:
    def test_rows(self, fig3):
        assert len(fig3) >= 9
        for r in fig3:
            assert r["I-diameter"] is not None
            assert r["avg I-dist"] <= r["I-diameter"]

    def test_hcn_flat_at_one(self, fig3):
        """HCN(n,n) keeps I-diameter = 1 while it fits the module cap."""
        for r in fig3:
            if r["network"].startswith("HCN"):
                assert r["I-diameter"] == 1

    def test_superip_idiameter_is_l_minus_1(self, fig3):
        for r in fig3:
            if "HSN(l" in r["network"]:
                l = round(math.log(r["N"], 16))
                assert r["I-diameter"] == l - 1

    def test_measured_matches_formula_where_overlapping(self, fig3):
        measured = fig3_intercluster_measured()
        formula_by_key = {(r["network"].split("(")[0], r["N"]): r for r in fig3}
        hits = 0
        for m in measured:
            key = (m["network"].split("(")[0], m["N"])
            f = formula_by_key.get(key)
            if f is None or m["module"] != f["module"]:
                continue
            assert m["I-diameter"] == f["I-diameter"]
            assert m["avg I-dist"] == pytest.approx(f["avg I-dist"], abs=0.01)
            hits += 1
        assert hits >= 2


class TestFig45Shape:
    def test_ring_cn_wins_ii_cost(self, fig45):
        """'cyclic-shift networks have II-cost considerably smaller than
        those of other popular topologies'."""
        for n in (2**12, 2**16, 2**20):
            cn = closest(fig45, "ring-CN(l,Q4)", n, key="II-cost")
            hc = closest(fig45, "hypercube", n, key="II-cost")
            assert cn["II-cost"] < hc["II-cost"]

    def test_ring_cn_ii_cost_bounded(self, fig45):
        """Ring-CN I-degree ≤ 2 and I-diameter = l−1: II-cost grows only
        logarithmically in N."""
        for r in fig45:
            if r["network"] == "ring-CN(l,Q4)":
                l = round(math.log(r["N"], 16))
                assert r["II-cost"] <= 2 * (l - 1) + 0.01

    def test_hypercube_ii_cost_quadratic(self, fig45):
        for r in fig45:
            if r["network"] == "hypercube":
                n = round(math.log2(r["N"]))
                assert r["II-cost"] == (n - 4) ** 2

    def test_id_cost_ordering(self):
        rows = fig4_id_cost(18)
        cn = closest(rows, "ring-CN(l,Q4)", 2**16, key="ID-cost")
        hc = closest(rows, "hypercube", 2**16, key="ID-cost")
        assert cn["ID-cost"] < hc["ID-cost"]


class TestSec53Table:
    def test_matches_paper(self):
        rows = sec53_offmodule_table()
        for r in rows:
            assert r["max off-links/node"] == r["paper"], r

    def test_render(self):
        rows = sec53_offmodule_table()
        out = render_table(rows)
        assert "ring-CN" in out and "paper" in out
