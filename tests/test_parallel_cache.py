"""Tests for the process-pool fan-out (repro.parallel) and the persistent
artifact cache (repro.cache): parallel-vs-serial bit-identity, cache
round-trips and invalidation, the bounded in-process memoizer, and the
sweep-input validation / saturation-baseline bugfixes that shipped with
them.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import cache, networks, obs
from repro.cache import ArtifactCache, cache_key, cached_next_hop_table, memoize_lru
from repro.cache.memory import clear_memory_caches
from repro.fault.sweep import fault_sweep
from repro.parallel import effective_jobs, run_tasks
from repro.routing.table import NextHopTable
from repro.sim.sweeps import offered_load_sweep, saturation_rate


@pytest.fixture()
def disk_cache(tmp_path):
    """A fresh artifact cache installed as the process default.

    ``min_nodes=1`` so the tiny instances these tests build are cached too
    (the production default skips networks below 64 nodes — see
    ``test_small_networks_not_stored_by_default``).
    """
    store = cache.configure(tmp_path / "cache", min_nodes=1)
    try:
        yield store
    finally:
        cache.set_cache(None)


@pytest.fixture()
def counters():
    """Enabled obs registry; yields a callable returning current counters."""
    obs.reset()
    obs.enable()
    try:
        yield lambda: dict(obs.report()["counters"])
    finally:
        obs.disable()
        obs.reset()


# ----------------------------------------------------------------------
# run_tasks / effective_jobs
# ----------------------------------------------------------------------
def _square(ctx, task):
    return ctx["base"] + task * task


def test_run_tasks_preserves_task_order_parallel():
    ctx = {"base": 100}
    tasks = list(range(7))
    assert run_tasks(_square, ctx, tasks, jobs=1) == run_tasks(
        _square, ctx, tasks, jobs=3
    )


def test_run_tasks_empty_and_serial_fastpath():
    assert run_tasks(_square, {"base": 0}, [], jobs=4) == []
    assert run_tasks(_square, {"base": 1}, [2], jobs=1) == [5]


def test_effective_jobs_resolution():
    assert effective_jobs(1) == 1
    assert effective_jobs(0) >= 1  # all cores
    assert effective_jobs(None) >= 1
    assert effective_jobs(8, num_tasks=3) == 3  # clamp to work available
    with pytest.raises(ValueError):
        effective_jobs(-2)


# ----------------------------------------------------------------------
# parallel-vs-serial bit-identity on the real sweeps
# ----------------------------------------------------------------------
def test_fault_sweep_bit_identical_across_jobs():
    g = networks.ring(16)
    kw = dict(trials=3, cycles=30, rate=0.1, seed=7)
    serial = fault_sweep(g, [0, 1, 3], jobs=1, **kw)
    parallel = fault_sweep(g, [0, 1, 3], jobs=4, **kw)
    assert serial == parallel


def test_offered_load_sweep_bit_identical_across_jobs():
    g = networks.hypercube(4)
    kw = dict(cycles=40, seed=3)
    serial = offered_load_sweep(g, 1, [0.05, 0.2], jobs=1, **kw)
    parallel = offered_load_sweep(g, 1, [0.05, 0.2], jobs=2, **kw)
    assert serial == parallel


def test_contracts_identical_across_jobs():
    from repro.check.invariants import run_contracts

    fams = ["ring", "hypercube", "hsn"]
    r1 = run_contracts(fams, jobs=1)
    r2 = run_contracts(fams, jobs=2)
    assert r1.checked == r2.checked
    assert [(f.where, f.rule, f.detail) for f in r1.findings] == [
        (f.where, f.rule, f.detail) for f in r2.findings
    ]


# ----------------------------------------------------------------------
# sweep-input validation + saturation baseline (the bugfix satellites)
# ----------------------------------------------------------------------
def test_empty_rates_raises_descriptive_valueerror():
    g = networks.ring(8)
    with pytest.raises(ValueError, match="non-empty"):
        offered_load_sweep(g, 1, [])
    with pytest.raises(ValueError, match="non-empty"):
        saturation_rate(g, 1, [])


def test_unsorted_or_duplicate_rates_rejected():
    g = networks.ring(8)
    with pytest.raises(ValueError, match="strictly increasing"):
        offered_load_sweep(g, 1, [0.3, 0.1])
    with pytest.raises(ValueError, match="strictly increasing"):
        offered_load_sweep(g, 1, [0.1, 0.1, 0.2])


def test_out_of_range_rates_rejected():
    g = networks.ring(8)
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        offered_load_sweep(g, 1, [-0.1, 0.5])
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        offered_load_sweep(g, 1, [0.5, 1.5])
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        offered_load_sweep(g, 1, [float("nan")])


def test_saturation_baseline_skips_zero_delivery_rate():
    # rate 0.0 delivers nothing (NaN latency); the old code baselined on
    # rows[0] and silently disabled blow-up detection.  The baseline must
    # come from the first delivering rate, so the 0.6 blow-up is caught.
    g = networks.ring(16)
    sat = saturation_rate(g, 1, [0.0, 0.02, 0.6], cycles=40, seed=0)
    assert sat == 0.6


def test_saturation_degenerate_all_empty_returns_inf():
    g = networks.ring(16)
    # nothing delivered and nothing lost at rate 0 -> no saturation signal
    assert saturation_rate(g, 1, [0.0], cycles=20) == math.inf


# ----------------------------------------------------------------------
# artifact cache: round-trip, hit/miss accounting, invalidation
# ----------------------------------------------------------------------
def test_registry_build_cache_round_trip(disk_cache, counters):
    g1 = networks.build("hsn", l=2, n=2)
    before = counters()
    g2 = networks.build("hsn", l=2, n=2)
    after = counters()
    assert after.get("cache.hit", 0) == before.get("cache.hit", 0) + 1
    assert g1.cache_key == g2.cache_key is not None
    assert g1.labels == g2.labels
    assert np.array_equal(g1.edges_src, g2.edges_src)
    assert np.array_equal(g1.edges_dst, g2.edges_dst)
    assert g1.generator_names() == g2.generator_names()
    assert [gen.kind for gen in g1.generators] == [gen.kind for gen in g2.generators]


def test_cache_key_changes_with_params_and_kind(disk_cache):
    a = networks.build("hsn", l=2, n=2)
    b = networks.build("hsn", l=3, n=2)
    c = networks.build("ring_cn", l=2, n=2)
    assert len({a.cache_key, b.cache_key, c.cache_key}) == 3
    assert cache_key("registry.build", family="hsn", params={"l": 2, "n": 2}) != cache_key(
        "superip.build", family="hsn", params={"l": 2, "n": 2}
    )


def test_cache_miss_then_store_then_entries(disk_cache, counters):
    assert disk_cache.entries() == []
    networks.build("ring", n=8)
    # plain classic families round-trip too (registry-level key)
    assert len(disk_cache.entries()) == 1
    assert disk_cache.size_bytes() > 0
    snap = counters()
    assert snap.get("cache.store", 0) >= 1
    assert snap.get("cache.miss", 0) >= 1
    assert disk_cache.clear() == 1
    assert disk_cache.entries() == []


def test_corrupt_cache_entry_is_dropped_and_rebuilt(disk_cache, counters):
    g1 = networks.build("ring", n=8)
    (entry,) = disk_cache.entries()
    entry.write_bytes(b"not an npz archive")
    g2 = networks.build("ring", n=8)
    snap = counters()
    assert snap.get("cache.error", 0) == 1
    assert g2.labels == g1.labels
    # the corrupt file was replaced by a fresh store
    assert len(disk_cache.entries()) == 1


def test_small_networks_not_stored_by_default(tmp_path, counters):
    # default min_nodes=64: tiny graphs cost more to load than to build
    store = cache.configure(tmp_path / "c")
    try:
        networks.build("ring", n=8)
        assert store.entries() == []
        assert counters().get("cache.skip", 0) >= 1
        networks.build("hypercube", n=6)  # 64 nodes: at the threshold
        assert len(store.entries()) == 1
    finally:
        cache.set_cache(None)


def test_uncached_build_when_cache_disabled():
    assert cache.get_cache() is None
    g = networks.build("ring", n=8)
    assert g.cache_key is None


def test_next_hop_table_cache_round_trip(disk_cache, counters):
    g = networks.build("hypercube", n=4)
    t1 = cached_next_hop_table(g, with_distances=True)
    before = counters()
    t2 = cached_next_hop_table(g, with_distances=True)
    after = counters()
    assert after.get("cache.hit", 0) == before.get("cache.hit", 0) + 1
    assert np.array_equal(t1.table, t2.table)
    assert np.array_equal(t1.dist, t2.dist)
    # a different option set is a different artifact
    t3 = cached_next_hop_table(g, with_distances=False)
    assert np.array_equal(t1.table, t3.table)
    ref = NextHopTable(g, with_distances=True)
    assert np.array_equal(ref.table, t2.table)


def test_next_hop_table_falls_back_without_cache_key(disk_cache):
    g = networks.ring(8)  # direct factory: no cache_key stamped
    assert g.cache_key is None
    t = cached_next_hop_table(g)
    assert np.array_equal(t.table, NextHopTable(g).table)


def test_atomic_store_arrays_round_trip(tmp_path):
    store = ArtifactCache(tmp_path)
    key = cache_key("test.arrays", x=1)
    arrays = {"a": np.arange(5), "b": np.eye(3)}
    assert store.store_arrays(key, arrays)
    loaded = store.load_arrays(key)
    assert set(loaded) == {"a", "b"}
    assert np.array_equal(loaded["a"], arrays["a"])
    assert np.array_equal(loaded["b"], arrays["b"])
    assert store.load_arrays(cache_key("test.arrays", x=2)) is None


def test_parallel_sweep_with_cache_enabled_matches_serial(disk_cache):
    g = networks.build("hsn", l=2, n=2)
    kw = dict(trials=2, cycles=30, seed=1)
    assert fault_sweep(g, [0, 2], jobs=1, **kw) == fault_sweep(g, [0, 2], jobs=3, **kw)


# ----------------------------------------------------------------------
# bounded in-process memoizer (the lru_cache replacement)
# ----------------------------------------------------------------------
def test_memoize_lru_bounds_and_clears():
    calls = []

    @memoize_lru(maxsize=2)
    def f(x):
        calls.append(x)
        return x * 10

    assert [f(1), f(2), f(1), f(3)] == [10, 20, 10, 30]
    assert calls == [1, 2, 3]
    # 1 was most-recently-used before 3 evicted 2
    f(2)
    assert calls == [1, 2, 3, 2]
    info = f.cache_info()
    assert info["maxsize"] == 2 and info["currsize"] == 2
    f.cache_clear()
    assert f.cache_info()["currsize"] == 0


def test_clear_memory_caches_flushes_nucleus_cache():
    from repro.core.superip import _nucleus_graph_cached

    networks.hsn_hypercube(2, 2)  # populates the nucleus cache
    assert _nucleus_graph_cached.cache_info()["currsize"] >= 1
    dropped = clear_memory_caches()
    assert dropped >= 1
    assert _nucleus_graph_cached.cache_info()["currsize"] == 0


def test_nucleus_cache_is_bounded():
    from repro.core.superip import _nucleus_graph_cached

    clear_memory_caches()
    for n in range(1, 12):
        networks.hypercube_nucleus(n if n <= 6 else 6)  # mix of specs
        networks.hsn_hypercube(2, min(n, 3))
    info = _nucleus_graph_cached.cache_info()
    assert info["currsize"] <= info["maxsize"]


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
def test_cli_faults_jobs_matches_serial(capsys):
    from repro.__main__ import main

    argv = ["faults", "--network", "ring", "--param", "n=12", "--faults", "0,1",
            "--trials", "2", "--cycles", "25"]
    assert main(argv + ["--jobs", "1"]) == 0
    serial_out = capsys.readouterr().out
    assert main(argv + ["--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert serial_out == parallel_out


def test_cli_cache_info_and_clear(tmp_path, capsys):
    from repro.__main__ import main

    d = str(tmp_path / "c")
    try:
        assert main(["info", "hypercube", "--param", "n=6", "--cache-dir", d]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", d]) == 0
        out = capsys.readouterr().out
        assert "entries:   1" in out
        assert main(["cache", "clear", "--cache-dir", d]) == 0
        assert "removed 1" in capsys.readouterr().out
    finally:
        cache.set_cache(None)


def test_cli_check_contracts_jobs(capsys):
    from repro.check.__main__ import main as check_main

    assert check_main(["contracts", "--family", "ring", "--jobs", "2"]) == 0
    assert "clean" in capsys.readouterr().out
