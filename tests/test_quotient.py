"""Tests for quotient networks (QCN)."""

import pytest

from repro import metrics as mt
from repro import networks as nw
from repro.networks.quotient import qcn, quotient_network


class TestQuotientNetwork:
    def test_hypercube_quotient_is_smaller_hypercube(self):
        import networkx as nx

        q = nw.hypercube(5)
        quot = quotient_network(q, lambda lab: lab[:3])
        assert quot.num_nodes == 8
        assert quot.procs_per_node == 4
        assert nx.is_isomorphic(quot.to_networkx(), nw.hypercube(3).to_networkx())

    def test_loops_removed(self):
        q = nw.hypercube(3)
        quot = quotient_network(q, lambda lab: lab[:1])
        # intra-group edges become loops and vanish from the simple graph
        assert quot.num_nodes == 2
        assert quot.num_edges() == 1

    def test_non_uniform_rejected(self):
        g = nw.path(5)
        with pytest.raises(ValueError, match="uniform"):
            quotient_network(g, lambda lab: 0 if lab[0] < 2 else 1)

    def test_name(self):
        q = quotient_network(nw.hypercube(4), lambda lab: lab[:2], name="custom")
        assert q.name == "custom"


class TestQCN:
    def test_size(self):
        q = qcn(2, 4, 2)
        # base ring-CN(2, Q4) has 256 nodes; merging 2-subcubes of the
        # front block gives 256/4 quotient nodes
        assert q.num_nodes == 64
        assert q.procs_per_node == 4

    def test_connected(self):
        assert mt.is_connected(qcn(2, 4, 2))

    def test_diameter_shrinks(self):
        base = nw.ring_cn_hypercube(2, 4)
        q = qcn(2, 4, 2)
        assert mt.diameter(q) < mt.diameter(base)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            qcn(2, 4, 0)
        with pytest.raises(ValueError):
            qcn(2, 4, 4)

    def test_qcn_offmodule_traffic_comparable(self):
        """Same 256-processor system built two ways: plain CN (256 routers)
        vs QCN (64 routers × 4 processors).  At l = 2 both need at most one
        off-module hop, so the per-processor average I-distance must agree
        to within the pair-counting correction; the quotient's win is the
        4× smaller router count at equal communication cost."""
        base = nw.ring_cn_hypercube(2, 4)
        ma_base = mt.nucleus_modules(base)
        q = qcn(2, 4, 2)
        # module = group of 4 quotient nodes sharing block 2 (16 procs)
        ma_q = mt.modules_by_key(q, lambda lab: tuple(lab[1:]))
        avg_base = mt.average_intercluster_distance(ma_base)
        # correct the quotient's node-pair average to processor pairs
        nq, p = q.num_nodes, q.procs_per_node
        np_total = nq * p
        avg_q_proc = mt.average_intercluster_distance(ma_q) * (
            (nq * (nq - 1)) * p * p / (np_total * (np_total - 1))
        )
        assert avg_q_proc == pytest.approx(avg_base, rel=0.02)
        assert mt.intercluster_diameter(ma_q) == mt.intercluster_diameter(ma_base)
