"""Seeded-violation tests for the kernel-perf analyzer and sanitizer.

Every perf rule (RPR020–RPR024) gets a known-bad fixture tree that must
fire with the exact code and ``file:line`` anchor, plus a corrected twin
that must stay quiet — mirroring ``test_check_dataflow.py``.  The
perimeter closure is pinned against the real call graph (typed edges
only), and the runtime sanitizer is mutation-tested: a forced perimeter
escape (SAN004) and a forced budget regression (SAN005) must both be
caught.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.check import (
    HOT_PERIMETER,
    PERF_RULES,
    PERF_SANITIZE_RULES,
    RULESET_VERSION,
    HotKernel,
    build_callgraph,
    hot_path_perimeter,
    perf_paths,
    perf_sanitize,
)
from repro.check.__main__ import main as check_main
from repro.check.perfsanitize import (
    Workload,
    load_budgets,
    run_workload,
    update_budgets,
)

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"
BUDGETS = Path(__file__).resolve().parents[1] / "benchmarks" / "perf_budgets.json"

#: fixture perimeter: one root named ``app.kern.kernel``
KERNEL = (HotKernel("app.kern.kernel", "fixture kernel"),)


def make_tree(tmp_path, files):
    """Write ``{relpath: source}`` as a package tree (inits auto-created)."""
    root = tmp_path / "tree"
    for rel, src in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        d = path.parent
        while d != root:
            (d / "__init__.py").touch()
            d = d.parent
        path.write_text(textwrap.dedent(src))
    return root


def line_of(root, rel, needle):
    """1-based line of the first source line containing ``needle``."""
    for i, line in enumerate((root / rel).read_text().splitlines(), start=1):
        if needle in line:
            return i
    raise AssertionError(f"{needle!r} not found in {rel}")


def codes(report):
    return {f.code for f in report.findings}


def anchor(report, code):
    """``(path-suffix, line)`` of the single finding with ``code``."""
    hits = [f for f in report.findings if f.code == code]
    assert len(hits) == 1, f"expected one {code}, got {hits}"
    return hits[0].path, hits[0].line


# ----------------------------------------------------------------------
# RPR020: per-element loops over array data
# ----------------------------------------------------------------------
class TestRPR020:
    def test_direct_iteration_fires_with_anchor(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(arr: np.ndarray):
                        total = 0
                        for v in arr:
                            total += v
                        return total
                """
            },
        )
        r = perf_paths([root], kernels=KERNEL)
        assert codes(r) == {"RPR020"}
        path, line = anchor(r, "RPR020")
        assert path.endswith("app/kern.py")
        assert line == line_of(root, "app/kern.py", "for v in arr")

    def test_tolist_iteration_and_scalar_index_range_fire(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(arr: np.ndarray):
                        total = 0
                        for v in arr.tolist():
                            total += v
                        for i in range(len(arr)):
                            total += arr[i]
                        return total
                """
            },
        )
        r = perf_paths([root], kernels=KERNEL)
        assert codes(r) == {"RPR020"}
        lines = sorted(f.line for f in r.findings)
        assert lines == [
            line_of(root, "app/kern.py", "for v in arr.tolist()"),
            line_of(root, "app/kern.py", "for i in range(len(arr))"),
        ]

    def test_vectorized_twin_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(arr: np.ndarray):
                        return int(np.sum(arr))
                """
            },
        )
        assert perf_paths([root], kernels=KERNEL).ok

    def test_outside_perimeter_is_not_scanned(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(arr: np.ndarray):
                        return int(np.sum(arr))

                    def cold_helper(arr: np.ndarray):
                        total = 0
                        for v in arr:
                            total += v
                        return total
                """
            },
        )
        # cold_helper is never called from the kernel: no findings
        assert perf_paths([root], kernels=KERNEL).ok


# ----------------------------------------------------------------------
# RPR021: growth-in-loop
# ----------------------------------------------------------------------
class TestRPR021:
    def test_np_append_in_loop_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(n):
                        out = np.empty(0, dtype=np.int64)
                        for i in range(n):
                            out = np.append(out, i)
                        return out
                """
            },
        )
        r = perf_paths([root], kernels=KERNEL)
        assert codes(r) == {"RPR021"}
        _, line = anchor(r, "RPR021")
        assert line == line_of(root, "app/kern.py", "np.append")

    def test_list_append_then_convert_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(n):
                        acc = []
                        for i in range(n):
                            acc.append(i * 2)
                        return np.asarray(acc)
                """
            },
        )
        r = perf_paths([root], kernels=KERNEL)
        assert codes(r) == {"RPR021"}
        _, line = anchor(r, "RPR021")
        assert line == line_of(root, "app/kern.py", "acc.append")

    def test_preallocated_twin_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(n):
                        out = np.arange(n, dtype=np.int64)
                        return out * 2
                """
            },
        )
        assert perf_paths([root], kernels=KERNEL).ok


# ----------------------------------------------------------------------
# RPR022: per-label dict/set probes
# ----------------------------------------------------------------------
class TestRPR022:
    def test_dict_get_per_label_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    def kernel(keys, index: dict):
                        out = []
                        for k in keys:
                            v = index.get(k)
                            out.append(v)
                        return out
                """
            },
        )
        r = perf_paths([root], kernels=KERNEL)
        assert "RPR022" in codes(r)
        hits = [f for f in r.findings if f.code == "RPR022"]
        assert hits[0].line == line_of(root, "app/kern.py", "index.get(k)")

    def test_set_add_per_label_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    def kernel(keys):
                        seen = set()
                        for k in keys:
                            seen.add(k)
                        return seen
                """
            },
        )
        r = perf_paths([root], kernels=KERNEL)
        assert "RPR022" in codes(r)
        hits = [f for f in r.findings if f.code == "RPR022"]
        assert hits[0].line == line_of(root, "app/kern.py", "seen.add(k)")

    def test_loop_invariant_probe_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    def kernel(keys, index: dict):
                        default = index.get("default")
                        out = []
                        for k in keys:
                            out.append(default)
                        return out
                """
            },
        )
        r = perf_paths([root], kernels=KERNEL)
        assert "RPR022" not in codes(r)


# ----------------------------------------------------------------------
# RPR023: dtype contracts
# ----------------------------------------------------------------------
class TestRPR023:
    def test_declared_contract_violation_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(n):
                        dist = np.zeros(n)
                        return dist
                """
            },
        )
        kernels = (
            HotKernel("app.kern.kernel", "fixture", contracts=(("dist", "int32"),)),
        )
        r = perf_paths([root], kernels=kernels)
        assert codes(r) == {"RPR023"}
        _, line = anchor(r, "RPR023")
        assert line == line_of(root, "app/kern.py", "np.zeros")

    def test_contract_honoured_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(n):
                        dist = np.zeros(n, dtype=np.int32)
                        return dist
                """
            },
        )
        kernels = (
            HotKernel("app.kern.kernel", "fixture", contracts=(("dist", "int32"),)),
        )
        assert perf_paths([root], kernels=kernels).ok

    def test_float_index_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(arr: np.ndarray, n):
                        mid = n / 2
                        return arr[mid]
                """
            },
        )
        r = perf_paths([root], kernels=KERNEL)
        assert codes(r) == {"RPR023"}
        _, line = anchor(r, "RPR023")
        assert line == line_of(root, "app/kern.py", "arr[mid]")


# ----------------------------------------------------------------------
# RPR024: loop-invariant recomputation
# ----------------------------------------------------------------------
class TestRPR024:
    def test_invariant_argsort_in_loop_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(arr: np.ndarray, reps):
                        total = 0
                        for r in range(reps):
                            order = np.argsort(arr)
                            total += int(order[0])
                        return total
                """
            },
        )
        r = perf_paths([root], kernels=KERNEL)
        assert codes(r) == {"RPR024"}
        _, line = anchor(r, "RPR024")
        assert line == line_of(root, "app/kern.py", "np.argsort")

    def test_loop_varying_argument_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(chunks, reps):
                        total = 0
                        for c in chunks:
                            order = np.argsort(c)
                            total += int(order[0])
                        return total
                """
            },
        )
        r = perf_paths([root], kernels=KERNEL)
        assert "RPR024" not in codes(r)


# ----------------------------------------------------------------------
# noqa suppression
# ----------------------------------------------------------------------
class TestNoqa:
    def test_line_noqa_suppresses_one_code(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(arr: np.ndarray):
                        total = 0
                        for v in arr:  # repro: noqa[RPR020]
                            total += v
                        return total
                """
            },
        )
        assert perf_paths([root], kernels=KERNEL).ok

    def test_def_line_noqa_suppresses_whole_function(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(arr: np.ndarray):  # repro: noqa[RPR020,RPR021]
                        acc = []
                        for v in arr:
                            acc.append(v)
                        return np.asarray(acc)
                """
            },
        )
        assert perf_paths([root], kernels=KERNEL).ok

    def test_def_line_noqa_does_not_cover_other_codes(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(arr: np.ndarray, keys):  # repro: noqa[RPR020]
                        seen = set()
                        for k in keys:
                            seen.add(k)
                        for v in arr:
                            pass
                        return seen
                """
            },
        )
        r = perf_paths([root], kernels=KERNEL)
        assert codes(r) == {"RPR022"}


# ----------------------------------------------------------------------
# perimeter closure against the real call graph
# ----------------------------------------------------------------------
class TestPerimeter:
    def test_real_roots_and_reachable_helpers(self):
        cg = build_callgraph([SRC])
        per = hot_path_perimeter(cg)
        for kernel in HOT_PERIMETER:
            assert kernel.qualname in per.reached, kernel.qualname
        # helpers reached through typed edges join the perimeter
        assert "repro.core.fastclosure._void_view" in per.reached
        assert (
            per.reached["repro.core.fastclosure._void_view"]
            == "repro.core.fastclosure.build_ip_graph_fast"
        )
        # cold construction/workload layers stay out
        assert "repro.networks.registry.build" not in per.reached
        assert "repro.sim.workloads.uniform_random" not in per.reached

    def test_untyped_receiver_fallback_edges_do_not_leak(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/kern.py": """
                    import numpy as np

                    def kernel(store, arr: np.ndarray):
                        return store.fetch(int(arr[0]))
                """,
                "app/other.py": """
                    import numpy as np

                    class Registry:
                        def fetch(self, arr: np.ndarray):
                            total = 0
                            for v in arr:
                                total += v
                            return total
                """,
            },
        )
        # `store` is untyped, so kernel -> Registry.fetch is only a
        # method-name fallback edge; the hot perimeter must not cross it
        cg = build_callgraph([root])
        per = hot_path_perimeter(cg, KERNEL)
        assert "app.other.Registry.fetch" not in per.reached
        assert perf_paths([root], kernels=KERNEL).ok


# ----------------------------------------------------------------------
# runtime sanitizer: SAN004 / SAN005
# ----------------------------------------------------------------------
def _busy_src_workload():
    """Workload whose thunk burns time in a real non-perimeter src function."""

    def prepare(smoke):
        from repro.core.permutation import from_cycles

        def run():
            for _ in range(4000):
                from_cycles(6, [(0, 1)])
            return 4000

        return run

    return Workload("busy_cold", "app.none", "call", prepare)


def _trivial_workload(name="trivial"):
    def prepare(smoke):
        def run():
            return 100

        return run

    return Workload(name, "app.none", "unit", prepare)


class TestPerfSanitize:
    def test_san004_fires_on_hot_function_outside_perimeter(self, tmp_path):
        r = perf_sanitize(
            paths=[SRC],
            workloads=[_busy_src_workload()],
            budgets_path=tmp_path / "budgets.json",
            floor_s=0.002,
        )
        assert "SAN004" in codes(r)
        msg = next(f.message for f in r.findings if f.code == "SAN004")
        assert "from_cycles" in msg

    def test_san005_fires_on_budget_regression_and_clears_after_update(
        self, tmp_path
    ):
        budgets = tmp_path / "budgets.json"
        w = _trivial_workload()
        # forced regression: an absurdly tight budget
        budgets.write_text(
            json.dumps(
                {
                    "profiles": {
                        "full": {"trivial": {"per_unit_us": 1e-9, "units": 100}}
                    }
                }
            )
        )
        r = perf_sanitize(paths=[SRC], workloads=[w], budgets_path=budgets)
        assert "SAN005" in codes(r)
        assert "per" in next(f.message for f in r.findings if f.code == "SAN005")
        # --update-budgets rewrites with margin; the rerun must be clean
        r2 = perf_sanitize(paths=[SRC], workloads=[w], budgets_path=budgets, update=True)
        assert "SAN005" not in codes(r2)
        data = load_budgets(budgets)
        assert data["profiles"]["full"]["trivial"]["per_unit_us"] > 0
        r3 = perf_sanitize(paths=[SRC], workloads=[w], budgets_path=budgets)
        assert "SAN005" not in codes(r3)

    def test_update_preserves_other_profile(self, tmp_path):
        budgets = tmp_path / "budgets.json"
        m = run_workload(_trivial_workload(), smoke=True, repeats=1)
        update_budgets(budgets, [m], "smoke")
        m2 = run_workload(_trivial_workload("other"), smoke=False, repeats=1)
        update_budgets(budgets, [m2], "full")
        data = load_budgets(budgets)
        assert "trivial" in data["profiles"]["smoke"]
        assert "other" in data["profiles"]["full"]

    def test_registered_workloads_have_perimeter_kernels(self):
        from repro.check.perfsanitize import WORKLOADS

        roots = {k.qualname for k in HOT_PERIMETER}
        for w in WORKLOADS:
            assert w.kernel in roots, w.kernel


# ----------------------------------------------------------------------
# CLI + repo gate
# ----------------------------------------------------------------------
class TestCLI:
    def test_perf_exit_codes(self, tmp_path, capsys):
        bad = make_tree(
            tmp_path,
            {
                # impersonates a real perimeter root by module path, so the
                # default HOT_PERIMETER picks it up through the CLI
                "repro/core/ipgraph.py": """
                    import numpy as np

                    def build_ip_graph(arr: np.ndarray):
                        total = 0
                        for v in arr:
                            total += v
                        return total
                """
            },
        )
        assert check_main(["perf", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RPR020" in out

    def test_repo_src_is_clean(self):
        assert check_main(["perf", str(SRC)]) == 0

    def test_help_lists_all_tiers(self, capsys):
        with pytest.raises(SystemExit) as exc:
            check_main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for tier in ("lint", "contracts", "dataflow", "sanitize", "perf"):
            assert tier in out

    def test_rule_catalogs_are_stable(self):
        assert set(PERF_RULES) == {
            "RPR020",
            "RPR021",
            "RPR022",
            "RPR023",
            "RPR024",
        }
        assert set(PERF_SANITIZE_RULES) == {"SAN004", "SAN005"}
        assert RULESET_VERSION >= 3

    def test_committed_budgets_cover_all_workloads(self):
        from repro.check.perfsanitize import WORKLOADS

        data = load_budgets(BUDGETS)
        for profile in ("smoke", "full"):
            assert set(data["profiles"][profile]) == {w.name for w in WORKLOADS}
