"""Additional property-based tests: persistence round-trips, simulator
conservation laws, and wormhole/packet consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.network import Network
from repro.io import load_network, save_network
from repro.sim import PacketSimulator, uniform_random
from repro.sim.wormhole import WormholeSimulator


def random_connected(n: int, extra: int, seed: int) -> Network:
    rng = np.random.default_rng(seed)
    edges = [(int(rng.integers(0, i)), i) for i in range(1, n)]
    for _ in range(extra):
        a, b = rng.integers(0, n, 2)
        if a != b:
            edges.append((int(a), int(b)))
    return Network.from_edge_list(
        [(i,) for i in range(n)], edges, name=f"rand({n},{extra},{seed})"
    )


class TestIORoundTripProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 30), st.integers(0, 40), st.integers(0, 10_000))
    def test_roundtrip_preserves_structure(self, n, extra, seed):
        import tempfile
        from pathlib import Path

        net = random_connected(n, extra, seed)
        with tempfile.TemporaryDirectory() as tmp:
            loaded = load_network(save_network(net, Path(tmp) / "net"))
        assert loaded.labels == net.labels
        assert loaded.num_edges() == net.num_edges()
        a, b = net.adjacency_csr(), loaded.adjacency_csr()
        assert (a != b).nnz == 0


class TestSimulatorConservation:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(4, 20), st.integers(0, 30), st.integers(0, 10_000))
    def test_packets_conserved(self, n, extra, seed):
        net = random_connected(n, extra, seed)
        rng = np.random.default_rng(seed)
        injections = uniform_random(net, 0.3, 20, rng)
        stats = PacketSimulator(net).run(injections)
        injected = sum(1 for _, s, d in injections if s != d)
        assert stats.delivered + stats.undelivered == injected
        assert stats.undelivered == 0  # no cutoff: everything drains

    @settings(max_examples=15, deadline=None)
    @given(st.integers(4, 16), st.integers(0, 20), st.integers(0, 10_000))
    def test_latency_at_least_distance(self, n, extra, seed):
        """No packet beats the BFS distance under unit delays."""
        from repro.metrics.distances import bfs_distances

        net = random_connected(n, extra, seed)
        rng = np.random.default_rng(seed + 1)
        injections = uniform_random(net, 0.2, 10, rng)
        sim = PacketSimulator(net)
        stats = sim.run(injections)
        # mean latency >= mean distance of the injected pairs
        d = bfs_distances(net, np.arange(net.num_nodes))
        if stats.delivered:
            mean_dist = np.mean([d[dd, s] for _, s, dd in injections if s != dd])
            assert stats.mean_latency >= mean_dist - 1e-9

    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 14), st.integers(0, 15), st.integers(0, 10_000))
    def test_wormhole_never_faster_than_header_distance(self, n, extra, seed):
        net = random_connected(n, extra, seed)
        rng = np.random.default_rng(seed + 2)
        injections = uniform_random(net, 0.2, 10, rng)
        length = 4
        stats = WormholeSimulator(net).run(injections, length=length)
        if stats.delivered:
            # tail latency >= hops + (length - 1)
            assert stats.mean_latency >= stats.mean_hops + (length - 1) - 1e-9

    def test_wormhole_vs_packet_light_load_ordering(self):
        """For multi-hop transfers of the same payload, cut-through beats
        store-and-forward, which beats nothing."""
        from repro import networks as nw

        q = nw.hypercube(4)
        inj = [(0, 0, 15)]
        worm = WormholeSimulator(q, delays=1).run(inj, length=16)
        saf = PacketSimulator(q, delays=16).run(inj)  # whole payload per hop
        assert worm.mean_latency < saf.mean_latency
