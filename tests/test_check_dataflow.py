"""Seeded-violation tests for the determinism analyzer and sanitizer.

Every dataflow rule (RPR010–RPR012) gets a known-bad fixture tree that
must fire with the exact code and ``file:line`` anchor, plus a corrected
twin that must stay quiet — the rules themselves are regression-tested,
not just the clean state of the repo.  The runtime sanitizer is mutation-
tested the same way: a forced serial/parallel divergence and a forced
global mutation must both be caught.
"""

import os
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.check import (
    DATAFLOW_RULES,
    RULESET_VERSION,
    SANITIZE_RULES,
    build_callgraph,
    dataflow_paths,
    find_perimeters,
    sanitize_sweep,
    sanitize_tasks,
)
from repro.check.__main__ import main as check_main
from repro.check.findings import Report
from repro.check.sanitize import artifact_fingerprint, compare_streams

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def make_tree(tmp_path, files):
    """Write ``{relpath: source}`` as a package tree (inits auto-created)."""
    root = tmp_path / "tree"
    for rel, src in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        d = path.parent
        while d != root:
            (d / "__init__.py").touch()
            d = d.parent
        path.write_text(textwrap.dedent(src))
    return root


def line_of(root, rel, needle):
    """1-based line of the first source line containing ``needle``."""
    for i, line in enumerate((root / rel).read_text().splitlines(), start=1):
        if needle in line:
            return i
    raise AssertionError(f"{needle!r} not found in {rel}")


def codes(report):
    return {f.code for f in report.findings}


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_call_and_callback_edges(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/work.py": """
                    def helper(x):
                        return x + 1

                    def worker(ctx, task):
                        return helper(task)

                    def submit(run, tasks):
                        return run(worker, None, tasks)
                """
            },
        )
        cg = build_callgraph([root])
        assert "app.work.worker" in cg.functions
        assert "app.work.helper" in cg.edges["app.work.worker"]
        # bare reference: worker passed as an argument, never called
        assert "app.work.worker" in cg.edges["app.work.submit"]
        assert cg.reachable(["app.work.submit"]) >= {
            "app.work.submit",
            "app.work.worker",
            "app.work.helper",
        }

    def test_reexport_alias_chain(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "pkg/__init__.py": "from .impl import thing\n",
                "pkg/impl.py": "def thing():\n    return 1\n",
                "pkg/user.py": """
                    import pkg

                    def use():
                        return pkg.thing()
                """,
            },
        )
        cg = build_callgraph([root])
        assert cg.canonical("pkg.thing") == "pkg.impl.thing"
        assert "pkg.impl.thing" in cg.edges["pkg.user.use"]

    def test_method_resolution_via_constructor_typed_local(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/engine.py": """
                    class Engine:
                        def __init__(self):
                            self.state = 0

                        def step(self):
                            return self.state

                    def drive():
                        e = Engine()
                        return e.step()
                """
            },
        )
        cg = build_callgraph([root])
        assert "app.engine.Engine.step" in cg.edges["app.engine.drive"]
        assert "app.engine.Engine.__init__" in cg.edges["app.engine.drive"]

    def test_real_repo_perimeters(self):
        cg = build_callgraph([SRC])
        perims = find_perimeters(cg)
        assert "repro.fault.sweep._fault_trial" in perims["parallel"].roots
        assert "repro.check.invariants._family_task" in perims["parallel"].roots
        assert "repro.cache.tables.cached_next_hop_table" in perims["cache"].roots
        assert "repro.networks.registry.build" in perims["cache"].roots
        assert any(
            q.startswith("repro.fault.sweep.fault_sweep") for q in perims["seeded"].roots
        )


# ----------------------------------------------------------------------
# RPR010: nondeterminism sources
# ----------------------------------------------------------------------
class TestRPR010:
    def test_set_iteration_in_task_fires_with_anchor(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/sweep.py": """
                    from repro.parallel import run_tasks

                    def worker(ctx, task):
                        s = {task, 1, 2}
                        return [x * 2 for x in s]

                    def sweep(tasks):
                        return run_tasks(worker, None, tasks)
                """
            },
        )
        r = dataflow_paths([root])
        assert codes(r) == {"RPR010"}
        (f,) = r.findings
        assert f.path.endswith("sweep.py")
        assert f.line == line_of(root, "app/sweep.py", "x * 2 for x in s")
        assert "worker" in f.message or "parallel" in f.message

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/sweep.py": """
                    from repro.parallel import run_tasks

                    def worker(ctx, task):
                        s = {task, 1, 2}
                        return [x * 2 for x in sorted(s)]

                    def sweep(tasks):
                        return run_tasks(worker, None, tasks)
                """
            },
        )
        assert dataflow_paths([root]).ok

    def test_nondeterminism_in_reachable_callee_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/sweep.py": """
                    from repro.parallel import run_tasks

                    def helper(x):
                        return hash(str(x))

                    def worker(ctx, task):
                        return helper(task)

                    def sweep(tasks):
                        return run_tasks(worker, None, tasks)
                """
            },
        )
        r = dataflow_paths([root])
        assert codes(r) == {"RPR010"}
        (f,) = r.findings
        assert f.line == line_of(root, "app/sweep.py", "hash(str(x))")

    def test_wallclock_in_seeded_sim_fires_but_perf_counter_ok(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/sim/engine.py": """
                    import time

                    def run_model(seed):
                        t0 = time.perf_counter()
                        stamp = time.time()
                        return (stamp, time.perf_counter() - t0)
                """
            },
        )
        r = dataflow_paths([root])
        assert codes(r) == {"RPR010"}
        (f,) = r.findings
        assert f.line == line_of(root, "app/sim/engine.py", "time.time()")
        assert "seeded" in f.message

    def test_unsorted_listing_fires_sorted_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/sim/loader.py": """
                    import os

                    def load_runs(seed):
                        good = sorted(os.listdir("runs"))
                        bad = os.listdir("runs")
                        return good, bad
                """
            },
        )
        r = dataflow_paths([root])
        assert len(r.findings) == 1
        assert r.findings[0].line == line_of(
            root, "app/sim/loader.py", "bad = os.listdir"
        )

    def test_global_rng_in_task_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/sweep.py": """
                    import random

                    from repro.parallel import run_tasks

                    def worker(ctx, task):
                        return random.random()

                    def sweep(tasks):
                        return run_tasks(worker, None, tasks)
                """
            },
        )
        r = dataflow_paths([root])
        assert codes(r) == {"RPR010"}

    def test_noqa_suppresses(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/sweep.py": """
                    from repro.parallel import run_tasks

                    def worker(ctx, task):
                        return hash(str(task))  # repro: noqa[RPR010]

                    def sweep(tasks):
                        return run_tasks(worker, None, tasks)
                """
            },
        )
        assert dataflow_paths([root]).ok


# ----------------------------------------------------------------------
# RPR011: worker mutation of module state
# ----------------------------------------------------------------------
class TestRPR011:
    def test_mutator_call_on_module_global_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/sweep.py": """
                    from repro.parallel import run_tasks

                    RESULTS = []

                    def worker(ctx, task):
                        RESULTS.append(task)
                        return task

                    def sweep(tasks):
                        return run_tasks(worker, None, tasks)
                """
            },
        )
        r = dataflow_paths([root])
        assert codes(r) == {"RPR011"}
        (f,) = r.findings
        assert f.line == line_of(root, "app/sweep.py", "RESULTS.append")
        assert "RESULTS" in f.message

    def test_global_rebind_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/sweep.py": """
                    from repro.parallel import run_tasks

                    COUNT = 0

                    def worker(ctx, task):
                        global COUNT
                        COUNT += 1
                        return COUNT

                    def sweep(tasks):
                        return run_tasks(worker, None, tasks)
                """
            },
        )
        r = dataflow_paths([root])
        assert "RPR011" in codes(r)
        assert any(
            f.line == line_of(root, "app/sweep.py", "COUNT += 1") for f in r.findings
        )

    def test_subscript_store_into_module_global_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/sweep.py": """
                    from repro.parallel import run_tasks

                    STATE = {}

                    def worker(ctx, task):
                        STATE[task] = 1
                        return task

                    def sweep(tasks):
                        return run_tasks(worker, None, tasks)
                """
            },
        )
        r = dataflow_paths([root])
        assert codes(r) == {"RPR011"}

    def test_local_accumulator_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/sweep.py": """
                    from repro.parallel import run_tasks

                    def worker(ctx, task):
                        acc = []
                        acc.append(task)
                        return acc

                    def sweep(tasks):
                        return run_tasks(worker, None, tasks)
                """
            },
        )
        assert dataflow_paths([root]).ok


# ----------------------------------------------------------------------
# RPR012: cache-key incompleteness
# ----------------------------------------------------------------------
class TestRPR012:
    def test_underkeyed_builder_fires_with_anchor(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/builder.py": """
                    from repro.cache import cache_key

                    def build_thing(name, depth, cache):
                        key = cache_key("thing", name=name)
                        data = [0] * depth
                        return (key, data)
                """
            },
        )
        r = dataflow_paths([root])
        assert codes(r) == {"RPR012"}
        (f,) = r.findings
        assert f.line == line_of(root, "app/builder.py", "key = cache_key")
        assert "`depth`" in f.message
        assert "`cache`" not in f.message  # exempt handle param

    def test_coverage_through_local_flow_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/builder.py": """
                    from repro.cache import cache_key

                    def build_other(name, depth):
                        material = [name]
                        material.append(depth)
                        key = cache_key("other", parts=material)
                        return (key, [0] * depth)
                """
            },
        )
        assert dataflow_paths([root]).ok

    def test_rebound_module_global_read_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/builder.py": """
                    from repro.cache import cache_key

                    _MODE = "fast"

                    def set_mode(m):
                        global _MODE
                        _MODE = m

                    def build_g(name):
                        key = cache_key("g", name=name)
                        return (key, _MODE)
                """
            },
        )
        r = dataflow_paths([root])
        assert codes(r) == {"RPR012"}
        assert "_MODE" in r.findings[0].message

    def test_noqa_suppresses(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "app/builder.py": """
                    from repro.cache import cache_key

                    def build_thing(name, depth):
                        key = cache_key("thing", name=name)  # repro: noqa[RPR012]
                        return (key, [0] * depth)
                """
            },
        )
        assert dataflow_paths([root]).ok


# ----------------------------------------------------------------------
# runtime sanitizer
# ----------------------------------------------------------------------
def _det_task(ctx, task):
    return {"v": task * ctx, "sq": task * task}


def _pid_task(ctx, task):
    # forced serial/parallel divergence: workers see their own pid
    return (task, os.getpid())


_ACC = []


def _mut_task(ctx, task):
    _ACC.append(task)
    return task


class TestSanitizerTasks:
    def test_deterministic_tasks_clean(self):
        r = sanitize_tasks(_det_task, 3, [1, 2, 3], jobs=2)
        assert r.ok
        assert r.checked >= 3

    def test_forced_serial_parallel_divergence_caught(self):
        r = sanitize_tasks(_pid_task, None, [1, 2, 3], jobs=2)
        assert "SAN001" in codes(r)
        (f,) = [f for f in r.findings if f.code == "SAN001"]
        assert "parallel.result" in f.message  # names the first bad artifact

    def test_global_mutation_caught(self):
        r = sanitize_tasks(_mut_task, None, [1, 2], jobs=2)
        assert codes(r) == {"SAN003"}
        assert any("_ACC" in f.message for f in r.findings)

    def test_compare_streams_pinpoints_first_divergence(self):
        a = [("net", "aa"), ("t0", "bb"), ("t1", "cc")]
        b = [("net", "aa"), ("t0", "xx"), ("t1", "yy")]
        rep = Report()
        compare_streams(a, b, "one", "two", "SAN001", rep)
        (f,) = rep.findings
        assert "`t0`" in f.message and "index 1" in f.message

    def test_compare_streams_length_mismatch(self):
        rep = Report()
        compare_streams([("a", "1")], [("a", "1"), ("b", "2")], "x", "y", "SAN002", rep)
        assert codes(rep) == {"SAN002"}

    def test_fingerprint_canonical(self):
        assert artifact_fingerprint({"b": 2, "a": 1}) == artifact_fingerprint(
            {"a": 1, "b": 2}
        )
        x = np.arange(6, dtype=np.int32)
        y = x.copy()
        y[3] = 99
        assert artifact_fingerprint(x) == artifact_fingerprint(x.copy())
        assert artifact_fingerprint(x) != artifact_fingerprint(y)
        assert artifact_fingerprint(x) != artifact_fingerprint(
            x.astype(np.int64)
        )  # dtype is part of the identity


class TestSanitizeSweep:
    def test_smoke_sweep_is_clean(self):
        r = sanitize_sweep(
            family="hsn",
            params={"l": 2, "n": 3},
            fault_counts=(0, 1),
            trials=1,
            cycles=20,
            jobs=2,
        )
        assert r.ok, r.render()
        assert r.checked >= 4  # tasks + two stream comparisons


# ----------------------------------------------------------------------
# CLI + repo gate
# ----------------------------------------------------------------------
class TestCLI:
    def test_dataflow_exit_codes(self, tmp_path, capsys):
        bad = make_tree(
            tmp_path,
            {
                "app/sweep.py": """
                    from repro.parallel import run_tasks

                    def worker(ctx, task):
                        return hash(str(task))

                    def sweep(tasks):
                        return run_tasks(worker, None, tasks)
                """
            },
        )
        assert check_main(["dataflow", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RPR010" in out

    def test_repo_src_is_clean(self):
        assert check_main(["dataflow", str(SRC)]) == 0

    def test_rule_catalogs_are_stable(self):
        assert set(DATAFLOW_RULES) == {"RPR010", "RPR011", "RPR012"}
        assert set(SANITIZE_RULES) == {"SAN001", "SAN002", "SAN003"}
        assert RULESET_VERSION >= 2


# ----------------------------------------------------------------------
# cache provenance
# ----------------------------------------------------------------------
class TestCacheProvenance:
    def test_ruleset_version_is_key_material(self, monkeypatch):
        from repro.cache import cache_key

        k1 = cache_key("t", a=1)
        monkeypatch.setattr("repro.check.ruleset.RULESET_VERSION", 999)
        assert cache_key("t", a=1) != k1

    def test_manifest_round_trip_and_clear(self, tmp_path):
        from repro import cache as cache_mod
        from repro import networks

        prev = cache_mod.get_cache()
        try:
            store = cache_mod.configure(tmp_path / "cache", min_nodes=1)
            net = networks.build("hypercube", n=4)
            prov = store.provenance(net.cache_key)
            assert prov is not None
            assert prov["kind"] == "registry.build"
            assert prov["ruleset"] == RULESET_VERSION
            assert prov["schema"] >= 1 and prov["bytes"] > 0
            store.clear()
            assert store.provenance(net.cache_key) is None
            assert not list(store.root.glob("*/*.json"))
        finally:
            cache_mod.set_cache(prev)
