"""Property and determinism tests for the batched event-driven core.

Covers the event-queue contracts that the randomized equivalence suite
exercises only statistically: the FIFO-then-pid contention tie-break on a
hand-computed case, same-seed bit-stability across runs and across process
-pool fan-out, warm-up-window invariance, the streaming latency histogram
against exact retained-array math, and the shared :class:`ChannelIndex`
arc lookup (including the negative-id aliasing trap).
"""

import numpy as np
import pytest

from repro import networks as nw
from repro.core.network import RoutingError
from repro.fault import FaultPlan, fault_sweep
from repro.sim import (
    ChannelIndex,
    LatencyHistogram,
    PacketSimulator,
    ReferencePacketSimulator,
    offered_load_sweep,
    uniform_random,
    uniform_random_array,
)


class TestFifoTieBreak:
    """Two packets contend for the same channel in the same cycle: the
    channel serves them in injection (pid) order, not interleaved —
    hand-computable on a 3-node path with 2-cycle channels."""

    def test_contention_served_in_injection_order(self):
        p = nw.path(3)
        # A(0->2) first: A crosses 0->1 during [0,2), B during [2,4);
        # A crosses 1->2 during [2,4) -> latencies {A: 4, B: 4}
        s = PacketSimulator(p, delays=2).run([(0, 0, 2), (0, 0, 1)])
        assert s.delivered == 2
        assert s.mean_latency == 4.0
        assert s.max_latency == 4

    def test_swapping_injection_order_changes_the_loser(self):
        p = nw.path(3)
        # B(0->1) first: B crosses during [0,2) (latency 2); A waits,
        # crosses 0->1 during [2,4) and 1->2 during [4,6) (latency 6)
        s = PacketSimulator(p, delays=2).run([(0, 0, 1), (0, 0, 2)])
        assert s.delivered == 2
        assert s.mean_latency == 4.0
        assert s.max_latency == 6

    @pytest.mark.parametrize(
        "inj", [[(0, 0, 2), (0, 0, 1)], [(0, 0, 1), (0, 0, 2)]]
    )
    def test_tie_break_matches_reference(self, inj):
        p = nw.path(3)
        assert PacketSimulator(p, delays=2).run(inj) == (
            ReferencePacketSimulator(p, delays=2).run(inj)
        )

    def test_many_way_contention_is_deterministic(self):
        # a star: every leaf fires at the hub's single receiver each cycle
        st = nw.star_graph(4)
        rng = np.random.default_rng(0)
        w = uniform_random(st, 0.9, 40, rng)
        a = PacketSimulator(st, delays=2).run(w)
        b = PacketSimulator(st, delays=2).run(w)
        assert a == b
        assert a == ReferencePacketSimulator(st, delays=2).run(w)


class TestSameSeedDeterminism:
    def _run(self, seed, faults=None):
        net = nw.hypercube(4)
        rng = np.random.default_rng(seed)
        w = uniform_random(net, 0.4, 50, rng)
        return PacketSimulator(net, faults=faults).run(w)

    def test_same_seed_same_stats(self):
        assert self._run(11) == self._run(11)

    def test_same_seed_same_stats_degraded(self):
        plan = FaultPlan().fail_link(3, 0, 1).fail_node(10, 9).repair_node(30, 9)
        assert self._run(11, plan) == self._run(11, plan)

    def test_sweep_rows_identical_across_jobs(self):
        net = nw.hypercube(3)
        kw = dict(rates=[0.05, 0.2, 0.4], cycles=40, seed=5)
        assert offered_load_sweep(net, 1, jobs=1, **kw) == (
            offered_load_sweep(net, 1, jobs=2, **kw)
        )

    def test_sweep_rows_identical_across_engines(self):
        net = nw.hypercube(3)
        kw = dict(rates=[0.05, 0.3], cycles=30, seed=5)
        assert offered_load_sweep(net, 1, engine="event", **kw) == (
            offered_load_sweep(net, 1, engine="reference", **kw)
        )

    def test_fault_sweep_identical_across_jobs_and_engines(self):
        net = nw.hypercube(3)
        kw = dict(fault_counts=[0, 2], trials=2, cycles=30, seed=3)
        serial = fault_sweep(net, **kw)
        assert serial == fault_sweep(net, jobs=2, **kw)
        assert serial == fault_sweep(net, engine="reference", **kw)

    def test_unknown_engine_rejected_before_running(self):
        with pytest.raises(ValueError, match="unknown simulator engine"):
            offered_load_sweep(nw.ring(6), 1, rates=[0.1], engine="warp")
        with pytest.raises(ValueError, match="unknown simulator engine"):
            fault_sweep(nw.ring(6), [0], engine="warp")


class TestWarmupInvariance:
    """Shifting every injection time by a constant warm-up offset must not
    change any per-packet observable — only the horizon moves."""

    def test_shifted_window_same_latencies(self):
        net = nw.hypercube(4)
        rng = np.random.default_rng(21)
        w = uniform_random(net, 0.5, 40, rng)
        shift = 10_000
        w_shifted = [(t + shift, s, d) for t, s, d in w]
        a = PacketSimulator(net).run(w)
        b = PacketSimulator(net).run(w_shifted)
        da, db = a.as_dict(), b.as_dict()
        assert db.pop("horizon") == da.pop("horizon") + shift
        # throughput/utilization divide by the horizon, so they move too
        for k in ("throughput", "mean_utilization"):
            da.pop(k), db.pop(k)
        norm = lambda d: {k: (None if v != v else v) for k, v in d.items()}  # noqa: E731
        assert norm(da) == norm(db)


class TestStreamingStats:
    def test_streaming_matches_exact_retained_math(self):
        # the reference engine retains packets: recompute its aggregates
        # with plain numpy over exact per-packet arrays and compare
        net = nw.hypercube(4)
        rng = np.random.default_rng(3)
        w = uniform_random(net, 0.6, 60, rng)
        sim = ReferencePacketSimulator(net, delays=2)
        inj = [(t, s, d) for t, s, d in w]
        stats = sim.run(inj)
        # re-simulate by hand bookkeeping: rely on the event core instead
        ev = PacketSimulator(net, delays=2)
        assert ev.run(inj) == stats
        assert stats.delivered == len(inj)
        lat = np.array(
            [t for t in self._latencies(net, inj)], dtype=np.int64
        )
        assert stats.mean_latency == float(np.mean(lat))
        assert stats.p99_latency == float(np.percentile(lat, 99))
        assert stats.max_latency == int(lat.max())

    @staticmethod
    def _latencies(net, inj):
        """Exact per-packet latencies via a bare re-run of the oracle."""
        sim = ReferencePacketSimulator(net, delays=2)
        validated = sim._validated(inj)
        # re-run while peeking at retained packets through from_run's input
        import heapq

        from repro.sim.reference import Packet

        packets = []
        events = []
        for t, s, d in validated:
            p = Packet(len(packets), s, d, t)
            packets.append(p)
            events.append((t, len(events), p.pid, s, -1, t))
        heapq.heapify(events)
        busy = np.zeros(len(sim.channels), dtype=np.int64)
        seq = len(events)
        while events:
            t, _, pid, node, _, _ = heapq.heappop(events)
            p = packets[pid]
            if node == p.dst:
                p.t_deliver = t
                continue
            nxt = sim.next_hop(node, p.dst)
            c = sim.channels.lookup(node, nxt)
            tx = max(t, int(busy[c]))
            fin = tx + int(sim.delays[c])
            busy[c] = fin
            p.hops += 1
            seq += 1
            heapq.heappush(events, (fin, seq, pid, nxt, c, tx))
        return [p.latency for p in packets if p.t_deliver >= 0]

    def test_histogram_percentiles_match_numpy_fuzz(self):
        rng = np.random.default_rng(0xBEEF)
        for _ in range(40):
            n = int(rng.integers(1, 400))
            # mix small values with overflow past the dense bins
            vals = rng.integers(0, 10_000, size=n)
            h = LatencyHistogram()
            h.add_array(vals)
            assert h.count == n
            for q in (0.0, 25.0, 50.0, 99.0, 100.0, float(rng.uniform(0, 100))):
                assert h.percentile(q) == float(np.percentile(vals, q))

    def test_histogram_scalar_and_batch_agree(self):
        vals = [0, 1, 1, 7, 4095, 4096, 99_999]
        a, b = LatencyHistogram(), LatencyHistogram()
        for v in vals:
            a.add(v)
        b.add_array(np.array(vals))
        assert a.count == b.count
        va, ca = a.value_counts()
        vb, cb = b.value_counts()
        assert (va == vb).all() and (ca == cb).all()
        assert a.percentile(99) == b.percentile(99)

    def test_histogram_rejects_negative(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError, match=">= 0"):
            h.add(-1)
        with pytest.raises(ValueError, match=">= 0"):
            h.add_array(np.array([3, -2]))

    def test_kth_order_statistic(self):
        h = LatencyHistogram()
        h.add_array(np.array([5, 1, 9, 1, 4096]))
        assert [h.kth(k) for k in range(5)] == [1, 1, 5, 9, 4096]
        with pytest.raises(IndexError):
            h.kth(5)


class TestChannelIndex:
    def test_lookup_matches_csr_positions(self):
        net = nw.hypercube(3)
        idx = ChannelIndex(net)
        csr = net.adjacency_csr()
        for u in range(net.num_nodes):
            for p in range(csr.indptr[u], csr.indptr[u + 1]):
                v = int(csr.indices[p])
                assert idx.lookup(u, v) == p

    def test_missing_arc_raises_routing_error(self):
        idx = ChannelIndex(nw.ring(8))
        with pytest.raises(RoutingError, match="no channel 0->4"):
            idx.lookup(0, 4)

    def test_negative_target_does_not_alias(self):
        # u*n + v with v = -1 collides with arc (u-1, n-1) unless range
        # checked; both lookup paths must reject it
        idx = ChannelIndex(nw.ring(8))
        with pytest.raises(RoutingError, match="no channel 1->-1"):
            idx.lookup(1, -1)
        with pytest.raises(RoutingError, match="no channel 1->-1"):
            idx.lookup_many(np.array([1]), np.array([-1]))

    def test_lookup_many_matches_scalar(self):
        net = nw.hsn(2, nw.hypercube_nucleus(2))
        idx = ChannelIndex(net)
        u, v = idx.sources, idx.indices
        got = idx.lookup_many(u, v)
        assert (got == np.arange(len(idx))).all()
        assert [idx.lookup(int(a), int(b)) for a, b in zip(u[:10], v[:10])] == (
            got[:10].tolist()
        )

    def test_lookup_many_reports_first_missing(self):
        idx = ChannelIndex(nw.ring(8))
        with pytest.raises(RoutingError, match="no channel 2->5"):
            idx.lookup_many(np.array([0, 2, 3]), np.array([1, 5, 9]))


class TestArrayWorkload:
    def test_array_workload_matches_list_workload(self):
        net = nw.hypercube(4)
        wl = uniform_random(net, 0.3, 50, np.random.default_rng(9))
        wa = uniform_random_array(net, 0.3, 50, np.random.default_rng(9))
        assert [tuple(r) for r in wa.tolist()] == wl

    def test_array_workload_properties(self):
        net = nw.ring(16)
        w = uniform_random_array(net, 0.5, 30, np.random.default_rng(1))
        assert w.dtype == np.int64 and w.ndim == 2 and w.shape[1] == 3
        t, s, d = w[:, 0], w[:, 1], w[:, 2]
        assert (t >= 0).all() and (t < 30).all()
        assert (s != d).all()
        assert (0 <= s).all() and (s < 16).all()
        assert (0 <= d).all() and (d < 16).all()
        # rows sorted by (t, src): the injection scan is row-major
        assert (np.diff(t) >= 0).all()

    def test_empty_and_zero_rate(self):
        net = nw.ring(8)
        rng = np.random.default_rng(0)
        assert uniform_random_array(net, 0.0, 20, rng).shape == (0, 3)
        assert uniform_random_array(net, 0.5, 0, rng).shape == (0, 3)

    def test_simulator_accepts_array_injections(self):
        net = nw.hypercube(3)
        w = uniform_random_array(net, 0.4, 40, np.random.default_rng(4))
        wl = [tuple(r) for r in w.tolist()]
        assert PacketSimulator(net).run(w) == PacketSimulator(net).run(wl)
        assert PacketSimulator(net).run(w) == (
            ReferencePacketSimulator(net).run(w)
        )

    def test_bad_array_shape_rejected(self):
        net = nw.ring(8)
        with pytest.raises(ValueError, match=r"shape \(N, 3\)"):
            PacketSimulator(net).run(np.zeros((4, 2), dtype=np.int64))


class TestValidationParity:
    """The batched validator must throw the reference's exact messages."""

    @pytest.mark.parametrize(
        "inj,msg",
        [
            ([(0, 0, 1), (-3, 1, 2)], "injection #1: injection time"),
            ([(0, 9, 1)], "node ids must be in"),
            ([(0, 0, 1), (1, 2, 2)], "injection #1: src == dst == 2"),
        ],
    )
    def test_same_error_messages(self, inj, msg):
        net = nw.ring(8)
        with pytest.raises(ValueError, match=msg) as ev:
            PacketSimulator(net).run(inj)
        with pytest.raises(ValueError, match=msg) as ref:
            ReferencePacketSimulator(net).run(inj)
        assert str(ev.value) == str(ref.value)

    def test_hop_guard_message_parity(self):
        net = nw.ring(8)

        def orbit(u, dst):
            # walks the ring forever, backing off whenever the next node is
            # the destination: trips the hop guard identically in both engines
            return (u + 1) % 8 if (u + 1) % 8 != dst else (u - 1) % 8

        sim = PacketSimulator(net, next_hop=orbit)
        ref = ReferencePacketSimulator(net, next_hop=orbit)
        with pytest.raises(RuntimeError) as a:
            sim.run([(0, 0, 4), (0, 1, 5)])
        with pytest.raises(RuntimeError) as b:
            ref.run([(0, 0, 4), (0, 1, 5)])
        assert str(a.value) == str(b.value)
