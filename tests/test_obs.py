"""Tests for the observability layer (repro.obs)."""

import io
import json

import pytest

from repro import obs
from repro.obs.registry import NOOP_REGISTRY, MetricsRegistry, Summary
from repro.obs.trace import TraceSink


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with obs disabled and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestRegistry:
    def test_counters_accumulate(self):
        r = MetricsRegistry()
        r.incr("a")
        r.incr("a", 2)
        r.incr("b", 5)
        assert r.counters == {"a": 3, "b": 5}

    def test_gauges(self):
        r = MetricsRegistry()
        r.gauge("g", 1.5)
        r.gauge("g", 2.5)  # last write wins
        r.gauge_max("m", 3)
        r.gauge_max("m", 1)  # lower value ignored
        assert r.gauges == {"g": 2.5, "m": 3}

    def test_observe_summary(self):
        r = MetricsRegistry()
        for v in [1, 2, 3, 4, 100]:
            r.observe("h", v)
        s = r.values["h"]
        assert s.count == 5
        assert s.total == 110
        assert s.min == 1
        assert s.max == 100
        assert s.mean == 22
        assert s.percentile(50) == 3

    def test_timer_accumulates(self):
        r = MetricsRegistry()
        with r.timer("t"):
            pass
        with r.timer("t"):
            pass
        s = r.timers["t"]
        assert s.count == 2
        assert s.total >= 0
        assert s.min <= s.max

    def test_reset(self):
        r = MetricsRegistry()
        r.incr("a")
        r.gauge("g", 1)
        r.observe("h", 1)
        r.observe_timer("t", 0.1)
        r.reset()
        assert r.report() == {"counters": {}, "gauges": {}, "timers": {}, "values": {}}

    def test_report_roundtrips_through_json(self):
        r = MetricsRegistry()
        r.incr("count", 3)
        r.incr("ratio", 0.5)
        r.gauge("g", 2.25)
        for v in range(10):
            r.observe("h", v)
        r.observe_timer("t", 0.25)
        rep = r.report()
        assert json.loads(json.dumps(rep)) == rep

    def test_summary_percentiles(self):
        s = Summary()
        for v in range(101):
            s.observe(v)
        assert s.percentile(0) == 0
        assert s.percentile(50) == 50
        assert s.percentile(99) == 99
        assert s.percentile(100) == 100


class TestDisabledNoop:
    def test_registry_identity(self):
        assert obs.registry() is NOOP_REGISTRY
        assert obs.registry() is obs.registry()

    def test_span_identity(self):
        # disabled spans are one shared object — no allocations per call
        assert obs.span("a") is obs.span("b")
        assert obs.span("a") is obs.NOOP_SPAN
        assert obs.timer("x") is obs.NOOP_SPAN

    def test_noop_timer_identity(self):
        assert NOOP_REGISTRY.timer("a") is NOOP_REGISTRY.timer("b")

    def test_noop_records_nothing(self):
        reg = obs.registry()
        reg.incr("a")
        reg.gauge("g", 1)
        reg.observe("h", 1)
        with reg.timer("t"):
            pass
        with obs.span("s", x=1) as sp:
            sp.set(y=2)
        assert reg.report() == {"counters": {}, "gauges": {}, "timers": {}, "values": {}}
        assert obs.report()["counters"] == {}
        assert obs.report()["timers"] == {}

    def test_timed_decorator_passthrough(self):
        calls = []

        @obs.timed("f")
        def f(x):
            calls.append(x)
            return x + 1

        assert f(1) == 2
        assert calls == [1]
        assert obs.report()["timers"] == {}


class TestEnabledFacade:
    def test_enable_switches_registry(self):
        obs.enable()
        assert obs.registry() is not NOOP_REGISTRY
        obs.registry().incr("a")
        assert obs.report()["counters"] == {"a": 1}
        obs.disable()
        assert obs.registry() is NOOP_REGISTRY
        # metrics survive disable until reset
        assert obs.report()["counters"] == {"a": 1}

    def test_span_times_into_registry(self):
        obs.enable()
        with obs.span("work"):
            with obs.span("inner"):
                pass
        rep = obs.report()
        assert rep["timers"]["work"]["count"] == 1
        assert rep["timers"]["inner"]["count"] == 1

    def test_timed_decorator_records(self):
        obs.enable()

        @obs.timed()
        def g():
            return 7

        assert g() == 7
        [(name, s)] = obs.report()["timers"].items()
        assert "g" in name
        assert s["count"] == 1

    def test_report_roundtrips_through_json(self):
        obs.enable()
        obs.registry().incr("n", 2)
        with obs.span("s"):
            pass
        rep = obs.report()
        assert json.loads(json.dumps(rep)) == rep

    def test_format_report_mentions_everything(self):
        obs.enable()
        obs.registry().incr("my.counter", 4)
        obs.registry().gauge("my.gauge", 1.0)
        obs.registry().observe("my.dist", 3)
        with obs.span("my.timer"):
            pass
        text = obs.format_report()
        for needle in ("my.counter", "my.gauge", "my.dist", "my.timer"):
            assert needle in text


class TestTraceSink:
    def _events(self, buf):
        return [json.loads(line) for line in buf.getvalue().splitlines()]

    def test_nested_spans_close_in_order(self):
        buf = io.StringIO()
        sink = TraceSink(buf)
        with sink.span("outer", a=1):
            with sink.span("middle"):
                sink.instant("tick", i=0)
                with sink.span("inner"):
                    pass
        sink.flush()
        ev = self._events(buf)
        # spans are emitted on close: innermost first
        assert [e["name"] for e in ev] == ["tick", "inner", "middle", "outer"]
        by_name = {e["name"]: e for e in ev}
        assert by_name["outer"]["depth"] == 0
        assert by_name["outer"]["parent"] is None
        assert by_name["middle"]["depth"] == 1
        assert by_name["middle"]["parent"] == "outer"
        assert by_name["inner"]["depth"] == 2
        assert by_name["inner"]["parent"] == "middle"
        assert by_name["tick"]["depth"] == 2
        assert by_name["outer"]["attrs"] == {"a": 1}
        for name in ("outer", "middle", "inner"):
            e = by_name[name]
            assert e["t1"] >= e["t0"]
            assert e["dur"] == pytest.approx(e["t1"] - e["t0"])

    def test_out_of_order_close_raises(self):
        sink = TraceSink(io.StringIO())
        outer = sink.span("outer")
        inner = sink.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            sink.end(outer)

    def test_flush_with_open_span_raises(self):
        sink = TraceSink(io.StringIO())
        sink.span("open").__enter__()
        with pytest.raises(RuntimeError, match="still open"):
            sink.flush()

    def test_span_exception_still_emits(self):
        buf = io.StringIO()
        sink = TraceSink(buf)
        with pytest.raises(ValueError):
            with sink.span("boom"):
                raise ValueError("x")
        sink.flush()
        ev = self._events(buf)
        assert [e["name"] for e in ev] == ["boom"]

    def test_facade_trace_to_stream(self):
        buf = io.StringIO()
        obs.enable(trace=buf)
        with obs.span("outer", kind="test") as sp:
            sp.set(total=5)
            obs.trace_instant("mark", level=1)
        obs.disable()  # flushes; must not close caller's stream
        ev = self._events(buf)
        assert [e["name"] for e in ev] == ["mark", "outer"]
        assert ev[1]["attrs"] == {"kind": "test", "total": 5}
        assert not buf.closed

    def test_facade_trace_to_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(trace=str(path))
        with obs.span("a"):
            pass
        obs.disable()
        ev = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(ev) == 1 and ev[0]["name"] == "a"


class TestInstrumentedKernels:
    def test_closure_metrics_recorded(self):
        from repro.core.fastclosure import build_ip_graph_fast
        from repro.core.ipgraph import build_ip_graph
        from repro.core.permutation import transposition

        gens = [transposition(4, 0, i) for i in range(1, 4)]
        obs.enable()
        build_ip_graph(tuple(range(4)), gens)
        build_ip_graph_fast(tuple(range(4)), gens)
        obs.disable()
        rep = obs.report()
        for prefix in ("reference", "fast"):
            assert rep["counters"][f"closure.{prefix}.nodes"] == 24
            assert rep["counters"][f"closure.{prefix}.arcs"] == 72
            # every non-discovery arc is a dedup hit
            assert rep["counters"][f"closure.{prefix}.dedup_hits"] == 72 - 23
        assert rep["timers"]["closure.build.reference"]["count"] == 1
        assert rep["timers"]["closure.build.fast"]["count"] == 1
        # both engines must report identical level structure (star graph S4)
        ref = rep["values"]["closure.reference.level_frontier"]
        fast = rep["values"]["closure.fast.level_frontier"]
        assert ref["count"] == fast["count"]
        assert ref["max"] == fast["max"]

    def test_closure_trace_covers_build(self, tmp_path):
        from repro.core.fastclosure import build_ip_graph_fast
        from repro.core.permutation import transposition

        path = tmp_path / "t.jsonl"
        obs.enable(trace=str(path))
        build_ip_graph_fast(tuple(range(4)), [transposition(4, 0, i) for i in (1, 2, 3)])
        obs.disable()
        ev = [json.loads(line) for line in path.read_text().splitlines()]
        spans = [e for e in ev if e["type"] == "span"]
        levels = [e for e in ev if e["name"] == "closure.level"]
        assert any(s["name"] == "closure.build.fast" for s in spans)
        assert levels and all(e["parent"] == "closure.build.fast" for e in levels)
        frontiers = [e["attrs"]["frontier"] for e in levels]
        assert sum(e["attrs"].get("new_nodes", 0) for e in levels) == 24 - 1
        assert frontiers[0] == 1

    def test_routing_metrics_recorded(self):
        from repro.networks.classic import hypercube
        from repro.routing.table import NextHopTable

        g = hypercube(3)
        obs.enable()
        table = NextHopTable(g)
        table.path(0, 7)
        obs.disable()
        rep = obs.report()
        assert rep["counters"]["routing.table.builds"] == 1
        assert rep["counters"]["routing.table.nodes"] == 8
        assert rep["counters"]["routing.routes"] == 1
        assert rep["values"]["routing.hops"]["count"] == 1
        assert rep["values"]["routing.hops"]["max"] == 3  # antipodal in Q3
        assert rep["timers"]["routing.table.build"]["count"] == 1

    def test_sim_metrics_recorded(self):
        from repro.networks.classic import hypercube
        from repro.sim.simulator import PacketSimulator

        g = hypercube(3)
        obs.enable()
        stats = PacketSimulator(g).run([(0, 0, 7), (0, 3, 4)])
        obs.disable()
        rep = obs.report()
        assert stats.delivered == 2
        assert rep["counters"]["sim.runs"] == 1
        assert rep["counters"]["sim.packets_injected"] == 2
        assert rep["counters"]["sim.packets_delivered"] == 2
        assert rep["counters"]["sim.events"] >= 2
        assert rep["values"]["sim.latency"]["count"] == 2
        assert rep["timers"]["sim.run"]["count"] == 1
