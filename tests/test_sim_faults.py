"""Degraded-mode simulator tests: drops, retransmission, rerouting, sweeps."""

import numpy as np
import pytest

from repro import networks as nw
from repro import obs
from repro.core.network import RoutingError
from repro.fault import FaultPlan, fault_sweep
from repro.routing.table import NextHopTable
from repro.sim.simulator import PacketSimulator
from repro.sim.workloads import uniform_random


class TestNoFaultEquivalence:
    """ISSUE acceptance: an empty FaultPlan is bit-identical to faults=None."""

    def _workload(self, net, seed=11):
        return uniform_random(net, 0.4, 60, np.random.default_rng(seed))

    @pytest.mark.parametrize("builder,args", [
        (nw.hypercube, (4,)),
        (nw.ring, (16,)),
    ])
    def test_empty_plan_bit_identical(self, builder, args):
        net = builder(*args)
        inj = self._workload(net)
        s_plain = PacketSimulator(net).run(inj)
        s_empty = PacketSimulator(net, faults=FaultPlan()).run(inj)
        assert s_plain == s_empty
        assert s_empty.as_dict().keys() == s_plain.as_dict().keys()

    def test_plan_that_compiles_empty_is_identical_too(self):
        net = nw.ring(8)
        inj = self._workload(net)
        plan = FaultPlan().repair_node(5, 3)  # unmatched repair: no-op
        assert PacketSimulator(net, faults=plan).run(inj) == (
            PacketSimulator(net).run(inj)
        )

    def test_healthy_run_has_zero_fault_counters(self):
        net = nw.hypercube(3)
        s = PacketSimulator(net).run(self._workload(net))
        assert s.dropped == s.retransmitted == s.rerouted == 0
        assert s.delivery_ratio == 1.0
        assert s.injected == s.delivered


class TestDegradedMode:
    def test_link_fault_rerouted_and_delivered(self):
        g = nw.hypercube(3)
        # kill the only minimal 0->1 link before injection: forces a detour
        sim = PacketSimulator(g, faults=FaultPlan().fail_link(0, 0, 1))
        s = sim.run([(0, 0, 1)])
        assert s.delivered == 1
        assert s.delivery_ratio == 1.0
        assert s.rerouted >= 1
        assert s.dropped == 0
        assert s.mean_hops >= 3  # genuine detour, not the dead direct hop

    def test_transient_fault_retransmit_with_backoff(self):
        # ring(4), 10-cycle channels: packet 0->1 occupies the link over
        # [0, 10); the link dies at t=5 so the attempt is dropped at t=10.
        # Retry #1 fires at 10+16=26 with the link repaired -> delivered at 36.
        r4 = nw.ring(4)
        plan = FaultPlan().fail_link(5, 0, 1).repair_link(20, 0, 1)
        s = PacketSimulator(r4, delays=10, faults=plan).run([(0, 0, 1)])
        assert s.delivered == 1
        assert s.dropped == 1
        assert s.retransmitted == 1
        # latency counts from the ORIGINAL injection, not the retransmission
        assert s.mean_latency == 36.0

    def test_backoff_doubles_between_retries(self):
        # Primary-only routing (custom next_hop + faults): every attempt uses
        # the dead link, so timings expose the exponential backoff schedule.
        # Drop at t=10; retry#1 at 26 (dead, dropped); retry#2 at 26+32=58
        # with the link back up -> delivered at 68.
        r4 = nw.ring(4)
        table = NextHopTable(r4)
        plan = FaultPlan().fail_link(5, 0, 1).repair_link(50, 0, 1)
        s = PacketSimulator(
            r4, delays=10, next_hop=table.next_hop, faults=plan
        ).run([(0, 0, 1)])
        assert s.delivered == 1
        assert s.dropped == 2
        assert s.retransmitted == 2
        assert s.mean_latency == 68.0

    def test_dead_destination_exhausts_retries(self):
        g = nw.hypercube(3)
        sim = PacketSimulator(
            g, faults=FaultPlan().fail_node(0, 7), max_retries=2
        )
        s = sim.run([(0, 0, 7)])
        assert s.delivered == 0
        assert s.delivery_ratio == 0.0
        assert s.dropped == 3  # original attempt + 2 retries
        assert s.retransmitted == 2
        assert s.undelivered == 1

    def test_custom_router_cannot_avoid_faults(self):
        r4 = nw.ring(4)
        table = NextHopTable(r4)
        sim = PacketSimulator(
            r4,
            next_hop=table.next_hop,
            faults=FaultPlan().fail_link(0, 0, 1),
            max_retries=1,
        )
        s = sim.run([(0, 0, 1)])
        assert s.delivered == 0
        assert s.dropped == 2
        assert s.rerouted == 0

    def test_other_traffic_unaffected(self):
        g = nw.hypercube(3)
        plan = FaultPlan().fail_link(0, 0, 1)
        s = PacketSimulator(g, faults=plan).run([(0, 2, 6), (0, 5, 4)])
        assert s.delivered == 2
        assert s.rerouted == 0  # neither flow touches the dead link

    def test_fault_counters_reach_obs_registry(self):
        g = nw.hypercube(3)
        obs.enable()
        try:
            PacketSimulator(g, faults=FaultPlan().fail_link(0, 0, 1)).run(
                [(0, 0, 1)]
            )
            rep = obs.report()
            counters = rep["counters"]
            assert counters.get("sim.faults.reroutes", 0) >= 1
            assert "sim.fault_latency" in rep["values"]
        finally:
            obs.disable()


class TestChannelAndValidation:
    def test_channel_raises_routing_error_on_non_neighbor(self):
        r4 = nw.ring(4)
        sim = PacketSimulator(r4, next_hop=lambda u, dst: (u + 2) % 4)
        with pytest.raises(RoutingError, match="non-neighbor next hop"):
            sim.run([(0, 0, 2)])

    def test_routing_error_is_a_value_error(self):
        assert issubclass(RoutingError, ValueError)


class TestResilienceSweep:
    def test_sweep_rows_shape_and_determinism(self):
        g = nw.hypercube(3)
        kw = dict(trials=2, rate=0.2, cycles=20, seed=5)
        rows = fault_sweep(g, [0, 1], **kw)
        assert [r["faults"] for r in rows] == [0, 1]
        for r in rows:
            assert r["network"] == g.name
            assert 0.0 <= r["delivery_ratio"] <= 1.0
        assert rows[0]["delivery_ratio"] == 1.0
        assert rows[0]["latency_dilation"] == 1.0
        assert rows == fault_sweep(g, [0, 1], **kw)

    def test_symmetric_hsn_beats_ring_baseline(self):
        # ISSUE acceptance: seeded sweep shows symmetric HSN delivery ratio
        # >= the ring baseline at the same fault count.
        from repro.networks import hypercube_nucleus, symmetric_hsn

        hsn = symmetric_hsn(2, hypercube_nucleus(2))
        ring = nw.ring(32)
        kw = dict(trials=3, rate=0.1, cycles=30, seed=0)
        for faults in (2, 4):
            r_hsn = fault_sweep(hsn, [faults], **kw)[0]
            r_ring = fault_sweep(ring, [faults], **kw)[0]
            assert r_hsn["delivery_ratio"] >= r_ring["delivery_ratio"]

    def test_node_fault_sweep(self):
        g = nw.hypercube(4)
        rows = fault_sweep(
            g, [2], trials=2, kind="node", rate=0.1, cycles=20, seed=3
        )
        assert rows[0]["kind"] == "node"
        assert rows[0]["delivery_ratio"] <= 1.0
