"""Tests for disjoint paths, spectral metrics, and crossover analysis."""

import math

import numpy as np
import pytest

from repro import networks as nw
from repro.analysis import fig2_dd_cost, fig5_ii_cost
from repro.analysis.crossover import crossover_size, dominance_factor, series_of
from repro.metrics.spectral import (
    algebraic_connectivity,
    cheeger_bounds,
    laplacian_spectrum,
    spectral_gap,
)
from repro.routing.disjoint import (
    edge_disjoint_paths,
    node_disjoint_paths,
    path_diversity,
)


class TestDisjointPaths:
    def test_hypercube_has_n_disjoint_paths(self):
        """Classic: Q_n provides n node-disjoint paths between any pair."""
        q = nw.hypercube(4)
        paths = node_disjoint_paths(q, 0, 15)
        assert len(paths) == 4
        inner = [set(p[1:-1]) for p in paths]
        for i in range(len(inner)):
            for j in range(i + 1, len(inner)):
                assert not (inner[i] & inner[j])

    def test_star_graph_has_degree_disjoint_paths(self):
        """The star graph's fault-tolerance claim: n−1 disjoint paths."""
        s = nw.star_graph(4)
        paths = node_disjoint_paths(s, 0, s.num_nodes - 1)
        assert len(paths) == 3

    def test_paths_are_valid(self):
        g = nw.hsn_hypercube(2, 2)
        csr = g.adjacency_csr()
        for p in edge_disjoint_paths(g, 0, 10):
            for u, v in zip(p, p[1:]):
                assert v in csr.indices[csr.indptr[u] : csr.indptr[u + 1]]

    def test_edge_disjoint_at_least_node_disjoint(self):
        g = nw.petersen()
        e = edge_disjoint_paths(g, 0, 7)
        n = node_disjoint_paths(g, 0, 7)
        assert len(e) >= len(n)
        assert len(n) == 3  # Petersen is 3-connected

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            node_disjoint_paths(nw.ring(5), 2, 2)

    def test_path_diversity_symmetric_hsn(self):
        g = nw.symmetric_hsn(2, nw.hypercube_nucleus(2))
        rng = np.random.default_rng(0)
        div = path_diversity(g, pairs=15, rng=rng, kind="node")
        assert div["min_paths"] == 3  # = degree: maximal diversity

    def test_path_diversity_kind_validation(self):
        with pytest.raises(ValueError):
            path_diversity(nw.ring(6), 2, np.random.default_rng(0), kind="x")


class TestSpectral:
    def test_complete_graph_spectrum(self):
        k = nw.complete_graph(5)
        vals = laplacian_spectrum(k)
        assert vals[0] == pytest.approx(0, abs=1e-9)
        assert np.allclose(vals[1:], 5.0)

    def test_ring_algebraic_connectivity(self):
        # 2 - 2cos(2*pi/n)
        n = 12
        expected = 2 - 2 * math.cos(2 * math.pi / n)
        assert algebraic_connectivity(nw.ring(n)) == pytest.approx(expected)

    def test_hypercube_gap(self):
        # Q_n adjacency eigenvalues are n - 2k: second largest = n - 2
        assert spectral_gap(nw.hypercube(4)) == pytest.approx(2.0)

    def test_disconnected_zero(self):
        from repro.core.network import Network

        g = Network.from_edge_list([(i,) for i in range(4)], [(0, 1), (2, 3)])
        assert algebraic_connectivity(g) == pytest.approx(0, abs=1e-9)

    def test_cheeger_bounds_order(self):
        lo, hi = cheeger_bounds(nw.hypercube(4))
        assert 0 < lo <= hi

    def test_cheeger_requires_regular(self):
        with pytest.raises(ValueError):
            cheeger_bounds(nw.hsn_hypercube(2, 2))

    def test_denser_nucleus_better_gap(self):
        """Spectral version of the nucleus-density ablation."""
        ring_based = nw.hsn(2, nw.ring_nucleus(8), symmetric=True)
        cube_based = nw.hsn(2, nw.hypercube_nucleus(3), symmetric=True)
        assert algebraic_connectivity(cube_based) > algebraic_connectivity(ring_based)


class TestCrossover:
    @pytest.fixture(scope="class")
    def fig2(self):
        return fig2_dd_cost(22)

    def test_series_extraction(self, fig2):
        s = series_of(fig2, "hypercube", "DD-cost")
        assert s == sorted(s)
        assert all(v == round(math.log2(n)) ** 2 for n, v in s)

    def test_missing_family(self, fig2):
        with pytest.raises(KeyError):
            series_of(fig2, "nope", "DD-cost")

    def test_cn_overtakes_hypercube_early(self, fig2):
        """The CN-vs-hypercube DD crossover falls at small N and stays."""
        x = crossover_size(fig2, "ring-CN(l,Q4)", "hypercube", "DD-cost")
        assert x is not None
        assert x <= 2**16

    def test_star_vs_cn_no_decisive_crossover(self, fig2):
        f = dominance_factor(fig2, "star", "ring-CN(l,Q4)", "DD-cost", 2**16)
        # star slightly ahead; 'comparable' means within small factors
        assert 0.3 < f < 3

    def test_ii_cost_dominance_grows(self):
        rows = fig5_ii_cost(24)
        f_small = dominance_factor(rows, "ring-CN(l,Q4)", "hypercube", "II-cost", 2**8)
        f_large = dominance_factor(rows, "ring-CN(l,Q4)", "hypercube", "II-cost", 2**24)
        assert f_large > f_small > 1

    def test_torus_ii_crossover(self):
        """The 2-D torus starts cheaper on II-cost but loses to ring-CN as
        N grows — a genuine crossover the figure shows."""
        rows = fig5_ii_cost(24)
        torus_rows = [
            dict(r, network="torus2d") for r in rows if r["network"].endswith("-ary-2-cube")
        ]
        merged = rows + torus_rows
        x = crossover_size(merged, "ring-CN(l,Q4)", "torus2d", "II-cost")
        assert x is not None
        assert 2**6 < x < 2**16
