"""Randomized equivalence: the batched event core must be bit-identical to
the retained per-event reference oracle on arbitrary seeded runs.

``PacketSimulator`` (the event core) promises to reproduce
``ReferencePacketSimulator``'s ``SimStats`` exactly — not statistically,
bit for bit — on any workload, fault-free or degraded.  Here we fuzz ~50
seeded-random cases mixing network families, workload kinds, injection
rates, delay policies, module assignments, truncation via ``max_cycles``,
custom routers and fault plans (permanent and transient), and compare the
full stats dict of both engines, mirroring ``test_equivalence_random.py``
for the graph-closure layer.
"""

import random

import numpy as np
import pytest

from repro import networks as nw
from repro.fault import FaultPlan
from repro.routing.table import NextHopTable
from repro.sim import (
    PacketSimulator,
    ReferencePacketSimulator,
    hotspot,
    random_permutation_traffic,
    uniform_random,
    unit_node_capacity,
)

N_CASES = 50

FAMILIES = {
    "ring": lambda: nw.ring(12),
    "path": lambda: nw.path(10),
    "hypercube": lambda: nw.hypercube(4),
    "torus": lambda: nw.torus((4, 4)),
    "star": lambda: nw.star_graph(4),
    "hsn": lambda: nw.hsn(2, nw.hypercube_nucleus(2)),
}
WORKLOADS = ("uniform", "hotspot", "permutation")
FAULTS = (None, "link", "node", "link_mttr", "node_mttr")


def _random_case(rng: random.Random):
    """One random simulation setup, kept small enough that the per-event
    oracle stays fast (<= 32 nodes, <= 60 injection cycles)."""
    return {
        "family": rng.choice(sorted(FAMILIES)),
        "workload": rng.choice(WORKLOADS),
        "rate": rng.choice((0.05, 0.2, 0.5, 0.9)),
        "cycles": rng.randint(10, 60),
        "seed": rng.randrange(2**32),
        "delays": rng.choice(("unit", "uniform3", "degree")),
        "modules": rng.random() < 0.5,
        "faults": rng.choice(FAULTS),
        "fault_count": rng.randint(1, 3),
        "retransmit_timeout": rng.choice((2, 16)),
        "max_retries": rng.choice((1, 4)),
        "max_cycles": rng.choice((30, 200)) if rng.random() < 0.3 else None,
        "custom_router": rng.random() < 0.25,
    }


def _case_params():
    rng = random.Random(0x51B_1DE4)
    cases = [_random_case(rng) for _ in range(N_CASES)]
    # make sure the suite actually covers the interesting regimes
    assert {c["family"] for c in cases} == set(FAMILIES)
    assert {c["workload"] for c in cases} == set(WORKLOADS)
    assert {c["faults"] for c in cases} == set(FAULTS)
    assert any(c["faults"] and c["custom_router"] for c in cases)
    assert any(c["faults"] and c["modules"] for c in cases)
    assert any(c["max_cycles"] is not None for c in cases)
    assert any(c["max_cycles"] is not None and c["faults"] for c in cases)
    assert any(c["rate"] == 0.9 for c in cases)  # real channel contention
    return cases


def _build(case, cls):
    net = FAMILIES[case["family"]]()
    n = net.num_nodes
    if case["delays"] == "unit":
        delays = 1
    elif case["delays"] == "uniform3":
        delays = 3
    else:
        delays = unit_node_capacity(net)
    module_of = np.arange(n) // max(1, n // 4) if case["modules"] else None
    faults = None
    if case["faults"]:
        frng = np.random.default_rng([case["seed"], 0xFA])
        kind = case["faults"]
        mttr = 20 if kind.endswith("_mttr") else None
        count = min(case["fault_count"], 2 if kind.startswith("node") else 3)
        if kind.startswith("link"):
            faults = FaultPlan.random_link_faults(
                net, count, frng, horizon=case["cycles"], mttr=mttr
            )
        else:
            faults = FaultPlan.random_node_faults(
                net, count, frng, horizon=case["cycles"], mttr=mttr
            )
    next_hop = NextHopTable(net).next_hop if case["custom_router"] else None
    sim = cls(
        net,
        delays=delays,
        next_hop=next_hop,
        module_of=module_of,
        faults=faults,
        retransmit_timeout=case["retransmit_timeout"],
        max_retries=case["max_retries"],
    )
    wrng = np.random.default_rng(case["seed"])
    if case["workload"] == "uniform":
        w = uniform_random(net, case["rate"], case["cycles"], wrng)
    elif case["workload"] == "hotspot":
        w = hotspot(net, case["rate"], case["cycles"], wrng)
    else:
        w = random_permutation_traffic(net, wrng, packets_per_pair=3)
    return sim, w


@pytest.mark.parametrize("case", _case_params())
def test_event_core_matches_reference(case):
    ev, w = _build(case, PacketSimulator)
    ref, w2 = _build(case, ReferencePacketSimulator)
    assert w == w2  # same seeded workload on both engines
    a = ev.run(w, max_cycles=case["max_cycles"])
    b = ref.run(w, max_cycles=case["max_cycles"])
    assert a.as_dict() == pytest.approx(b.as_dict(), abs=0, rel=0, nan_ok=True)
    assert a == b


def test_equivalence_holds_under_profiling(tmp_path):
    """Instrumentation must not perturb either engine's output."""
    from repro import obs

    case = _case_params()[0]
    ev, w = _build(case, PacketSimulator)
    bare = ev.run(w)
    obs.enable(trace=str(tmp_path / "t.jsonl"))
    try:
        ev_p, _ = _build(case, PacketSimulator)
        ref_p, _ = _build(case, ReferencePacketSimulator)
        a = ev_p.run(w)
        b = ref_p.run(w)
    finally:
        obs.disable()
        obs.reset()
    assert a == bare == b
