"""Tests for the IP-graph engine, including the paper's worked examples."""

import numpy as np
import pytest

from repro.core.ipgraph import GENERIC, NUCLEUS, SUPER, Generator, build_ip_graph
from repro.core.permutation import (
    cyclic_shift_left,
    from_cycles,
    identity,
    transposition,
)


class TestPaperExamples:
    """Section 2 of the paper, reproduced verbatim."""

    def test_six_star_is_720_nodes(self):
        # "If we continue this process ... we will obtain 720 distinct labels"
        seed = tuple(range(6))
        gens = [from_cycles(6, [(1, i)], one_based=True) for i in range(2, 7)]
        g = build_ip_graph(seed, gens)
        assert g.num_nodes == 720
        assert g.is_regular()
        assert g.max_degree == 5

    def test_six_star_neighbor_labels(self):
        # X = 123456; generators pi_1..pi_5 give the listed neighbors
        seed = (1, 2, 3, 4, 5, 6)
        gens = [from_cycles(6, [(1, i)], one_based=True) for i in range(2, 7)]
        g = build_ip_graph(seed, gens)
        neighbors = {g.labels[g.apply_generator(0, k)] for k in range(5)}
        assert neighbors == {
            (2, 1, 3, 4, 5, 6),
            (3, 2, 1, 4, 5, 6),
            (4, 2, 3, 1, 5, 6),
            (5, 2, 3, 4, 1, 6),
            (6, 2, 3, 4, 5, 1),
        }

    def test_ip_example_36_nodes(self):
        # seed 123123 with pi_1=(1,2), pi_2=(1,3), pi_6=456123
        seed = (1, 2, 3, 1, 2, 3)
        gens = [
            from_cycles(6, [(1, 2)], one_based=True),
            from_cycles(6, [(1, 3)], one_based=True),
            cyclic_shift_left(6, 3),
        ]
        g = build_ip_graph(seed, gens)
        assert g.num_nodes == 36

    def test_ip_example_neighbors(self):
        # Y = 123123 -> 213123, 321123, 123123-rotated = 123123
        seed = (1, 2, 3, 1, 2, 3)
        gens = [
            from_cycles(6, [(1, 2)], one_based=True),
            from_cycles(6, [(1, 3)], one_based=True),
            cyclic_shift_left(6, 3),
        ]
        g = build_ip_graph(seed, gens)
        assert g.labels[g.apply_generator(0, 0)] == (2, 1, 3, 1, 2, 3)
        assert g.labels[g.apply_generator(0, 1)] == (3, 2, 1, 1, 2, 3)
        # the rotation maps the seed to itself (both halves equal)
        assert g.apply_generator(0, 2) == 0

    def test_hcn_seed_self_loop(self):
        """The paper notes the first generated HCN node is the seed itself
        (the swap fixes the repeated-halves seed)."""
        from repro.networks.nuclei import hypercube_nucleus
        from repro.core.superip import SuperGeneratorSet, build_super_ip_graph

        g = build_super_ip_graph(hypercube_nucleus(2), SuperGeneratorSet.transpositions(2))
        swap_gen = len(g.generators) - 1
        assert g.generators[swap_gen].kind == SUPER
        assert g.apply_generator(0, swap_gen) == 0  # self-loop on the seed

    def test_seed_choice_gives_same_connectivity(self):
        """'using the label of any of the 16 nodes as the initial seed will
        eventually generate exactly the same graph'."""
        from repro.networks.nuclei import hypercube_nucleus
        from repro.core.superip import SuperGeneratorSet, build_super_ip_graph

        base = build_super_ip_graph(
            hypercube_nucleus(2), SuperGeneratorSet.transpositions(2)
        )
        gens = base.generators
        for node in range(0, base.num_nodes, 5):
            g2 = build_ip_graph(base.labels[node], gens)
            assert set(g2.labels) == set(base.labels)


class TestEngine:
    def setup_method(self):
        self.seed = (0, 1, 2)
        self.gens = [
            Generator(transposition(3, 0, 1), name="a"),
            Generator(transposition(3, 0, 2), name="b"),
        ]

    def test_builds_s3(self):
        g = build_ip_graph(self.seed, self.gens)
        assert g.num_nodes == 6
        assert g.num_edges() == 6
        assert g.max_degree == 2  # S3 is a 6-cycle

    def test_node_label_roundtrip(self):
        g = build_ip_graph(self.seed, self.gens)
        for i in range(g.num_nodes):
            assert g.node_of(g.label_of(i)) == i

    def test_apply_generator_matches_edges(self):
        g = build_ip_graph(self.seed, self.gens)
        for u in range(g.num_nodes):
            for k in range(len(g.generators)):
                v = g.apply_generator(u, k)
                assert v in g.neighbors(u) or v == u

    def test_bare_permutations_accepted(self):
        g = build_ip_graph(self.seed, [transposition(3, 0, 1), transposition(3, 0, 2)])
        assert g.num_nodes == 6
        assert all(gen.kind == GENERIC for gen in g.generators)

    def test_max_nodes_guard(self):
        with pytest.raises(ValueError, match="max_nodes"):
            build_ip_graph(tuple(range(8)),
                           [transposition(8, 0, i) for i in range(1, 8)],
                           max_nodes=100)

    def test_no_generators_rejected(self):
        with pytest.raises(ValueError):
            build_ip_graph((0, 1), [])

    def test_seed_length_mismatch(self):
        with pytest.raises(ValueError):
            build_ip_graph((0, 1, 2), [transposition(2, 0, 1)])

    def test_generator_size_mismatch(self):
        with pytest.raises(ValueError):
            build_ip_graph((0, 1), [transposition(2, 0, 1), transposition(3, 0, 1)])

    def test_generator_kind_validation(self):
        with pytest.raises(ValueError):
            Generator(identity(2), kind="bogus")

    def test_edge_kinds(self):
        g = build_ip_graph(
            (0, 1),
            [Generator(transposition(2, 0, 1), kind=NUCLEUS)],
        )
        assert (g.edge_kinds() == 0).all()

    def test_generator_names(self):
        g = build_ip_graph(self.seed, self.gens)
        assert g.generator_names() == ["a", "b"]

    def test_directed_flag(self):
        g = build_ip_graph((0, 1, 2), [cyclic_shift_left(3, 1)], directed=True)
        assert g.directed
        assert g.num_nodes == 3
        # each node has out-degree 1 in the directed simple graph
        assert g.max_degree == 1

    def test_repr(self):
        g = build_ip_graph(self.seed, self.gens, name="s3")
        assert "s3" in repr(g)
        assert "N=6" in repr(g)

    def test_degree_histogram(self):
        g = build_ip_graph(self.seed, self.gens)
        assert g.degree_histogram() == {2: 6}

    def test_self_loops_excluded_from_degree(self):
        # a generator fixing every label contributes nothing to degree
        g = build_ip_graph(
            (0, 0, 1),
            [transposition(3, 0, 1), transposition(3, 1, 2)],
        )
        degs = g.degrees()
        assert degs.max() <= 2

    def test_adjacency_symmetric(self):
        g = build_ip_graph(self.seed, self.gens)
        a = g.adjacency_csr()
        assert (a != a.T).nnz == 0

    def test_to_networkx_labels(self):
        g = build_ip_graph(self.seed, self.gens)
        nx_g = g.to_networkx(labels=True)
        assert nx_g.nodes[0]["label"] == self.seed
        assert nx_g.number_of_edges() == g.num_edges()
